// Table: a named spatio-temporal data set registered with STORM — the
// record store holding its documents, the (x, y, t) entries extracted by
// the data connector, and the ST-indexing structures (a Hilbert R-tree/
// RS-tree, and optionally an LS-tree) the sampler module draws from.

#ifndef STORM_QUERY_TABLE_H_
#define STORM_QUERY_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storm/cluster/coordinator.h"
#include "storm/connector/importer.h"
#include "storm/query/ast.h"
#include "storm/sampling/ls_tree.h"
#include "storm/sampling/rs_tree.h"
#include "storm/storage/record_store.h"

namespace storm {

struct TableConfig {
  RsTreeOptions rs;
  LsTreeOptions ls;
  /// Build the LS-tree next to the RS-tree (costs ~2x space).
  bool build_ls_tree = true;
  /// When > 1, additionally partition the table over this many simulated
  /// shards (enables USING DISTRIBUTED).
  int num_shards = 1;
  Partitioning partitioning = Partitioning::kHilbertRange;
  /// Seed for index randomness and sampler forks.
  uint64_t seed = 0x5707'11ed;
  RecordStoreOptions store;
};

/// A registered data set. Movable, not copyable.
class Table {
 public:
  using Entry = RTree<3>::Entry;

  /// Imports documents through the data connector and builds the indexes.
  static Result<Table> Create(std::string name, const std::vector<Value>& docs,
                              const ImportOptions& import_options = {},
                              TableConfig config = {});

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  uint64_t size() const { return rs_->size(); }
  Rect3 bounds() const { return rs_->tree().bounds(); }
  const Schema& schema() const { return schema_; }
  const SpatioTemporalBinding& binding() const { return binding_; }
  const RecordStore& store() const { return *store_; }
  const std::vector<Entry>& entries() const { return entries_; }
  const RsTree<3>& rs_tree() const { return *rs_; }
  const LsTree<3>* ls_tree() const { return ls_.get(); }
  /// Non-null when the table was built with num_shards > 1.
  const Cluster* cluster() const { return cluster_.get(); }
  /// Mutable cluster access for fault controls (Kill/Revive/SetLatencyMs).
  Cluster* mutable_cluster() { return cluster_.get(); }
  /// The base Hilbert R-tree (shared by RandomPath/QueryFirst samplers).
  const RTree<3>& base_tree() const { return rs_->tree(); }

  /// Creates a sampler implementing the given strategy. kAuto is resolved
  /// by the QueryOptimizer, not here (passing it is an error).
  Result<std::unique_ptr<SpatialSampler<3>>> NewSampler(SamplerStrategy strategy,
                                                        uint64_t seed) const;

  /// Lazily materialized numeric column, indexed by record id (NaN for
  /// missing/non-numeric/deleted). The pointer stays valid across updates.
  Result<const std::vector<double>*> NumericColumn(const std::string& field) const;

  /// Field accessors that go through the record store (no cache).
  Result<std::string> TextOf(RecordId id, const std::string& field) const;
  Result<double> NumberOf(RecordId id, const std::string& field) const;

  /// Inserts one document: appends to the store, extracts coordinates, and
  /// maintains every index and materialized column (the update-manager
  /// path).
  Result<RecordId> Insert(const Value& doc);

  /// Deletes a record from the store and all indexes.
  Status Delete(RecordId id);

 private:
  Table() = default;

  Result<Point3> ExtractPoint(const Value& doc) const;

  std::string name_;
  Schema schema_;
  SpatioTemporalBinding binding_;
  TableConfig config_;
  std::unique_ptr<RecordStore> store_;
  std::vector<Entry> entries_;
  std::unordered_map<RecordId, size_t> entry_pos_;
  std::unique_ptr<RsTree<3>> rs_;
  std::unique_ptr<LsTree<3>> ls_;
  std::unique_ptr<Cluster> cluster_;
  mutable std::unordered_map<std::string, std::unique_ptr<std::vector<double>>>
      columns_;
  mutable uint64_t sampler_seq_ = 0;
};

}  // namespace storm

#endif  // STORM_QUERY_TABLE_H_
