// Table: a named spatio-temporal data set registered with STORM — the
// record store holding its documents, the (x, y, t) entries extracted by
// the data connector, and the ST-indexing structures (a Hilbert R-tree/
// RS-tree, and optionally an LS-tree) the sampler module draws from.

#ifndef STORM_QUERY_TABLE_H_
#define STORM_QUERY_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storm/cluster/coordinator.h"
#include "storm/connector/importer.h"
#include "storm/query/ast.h"
#include "storm/sampling/ls_tree.h"
#include "storm/sampling/rs_tree.h"
#include "storm/storage/record_store.h"

namespace storm {

// Internal durability type (storm/wal/wal.h); deliberately not exposed
// through this public header.
class Wal;

/// Returns a process-unique table epoch value (monotone counter). Every
/// Table instance starts at a fresh epoch and moves to another on each
/// mutation, so a sample reservoir tagged with an epoch can never alias a
/// different table state — not even a dropped-and-recreated table of the
/// same name (see storm/cache/sample_cache.h).
uint64_t NextTableEpoch();

struct TableConfig {
  RsTreeOptions rs;
  LsTreeOptions ls;
  /// Build the LS-tree next to the RS-tree (costs ~2x space).
  bool build_ls_tree = true;
  /// When > 1, additionally partition the table over this many simulated
  /// shards (enables USING DISTRIBUTED).
  int num_shards = 1;
  Partitioning partitioning = Partitioning::kHilbertRange;
  /// Seed for index randomness and sampler forks.
  uint64_t seed = 0x5707'11ed;
  RecordStoreOptions store;
  /// Crash-safe mode: the table formats its disk with a superblock, logs
  /// every update to a WAL before applying it, and supports Checkpoint()/
  /// Recover(). The initial import is made durable by an automatic first
  /// checkpoint. See docs/ROBUSTNESS.md §Durability.
  bool durable = false;
};

/// Outcome of a (possibly partial) batch insert. Unlike a bare Status, this
/// reports structurally which documents were applied, so callers never have
/// to parse counts out of error messages.
struct BatchInsertResult {
  /// Record ids applied, in input order. On success: one per document. On
  /// failure: the documents applied before the failure (always empty when
  /// `atomic` is true).
  std::vector<RecordId> ids;
  /// OK, or the first failure.
  Status status;
  /// True when the batch was all-or-nothing: either every document was
  /// applied or none were. Durable tables commit batches through a single
  /// WAL record, so their batches are atomic even across crashes;
  /// non-durable tables apply document-by-document and may stop partway.
  bool atomic = false;
};

/// A registered data set. Movable, not copyable.
class Table {
 public:
  using Entry = RTree<3>::Entry;

  /// Imports documents through the data connector and builds the indexes.
  static Result<Table> Create(std::string name, const std::vector<Value>& docs,
                              const ImportOptions& import_options = {},
                              TableConfig config = {});

  // Defined in table.cc, where Wal is complete.
  Table(Table&&) noexcept;
  Table& operator=(Table&&) noexcept;
  ~Table();

  const std::string& name() const { return name_; }
  uint64_t size() const { return rs_->size(); }
  Rect3 bounds() const { return rs_->tree().bounds(); }
  const Schema& schema() const { return schema_; }
  const SpatioTemporalBinding& binding() const { return binding_; }
  const RecordStore& store() const { return *store_; }
  const std::vector<Entry>& entries() const { return entries_; }
  const RsTree<3>& rs_tree() const { return *rs_; }
  const LsTree<3>* ls_tree() const { return ls_.get(); }
  /// Non-null when the table was built with num_shards > 1.
  const Cluster* cluster() const { return cluster_.get(); }
  /// Mutable cluster access for fault controls (Kill/Revive/SetLatencyMs).
  Cluster* mutable_cluster() { return cluster_.get(); }
  /// The base Hilbert R-tree (shared by RandomPath/QueryFirst samplers).
  const RTree<3>& base_tree() const { return rs_->tree(); }

  /// Mutation epoch tagging cached sample reservoirs (process-unique; see
  /// NextTableEpoch). Insert/Delete/InsertBatch move the table to a fresh
  /// epoch, instantly invalidating every reservoir published against the
  /// old one. Queries read it once at plan time — they hold ReadLock() for
  /// their whole execution, so it cannot move under them.
  uint64_t epoch() const { return epoch_->load(std::memory_order_acquire); }

  /// Creates a sampler implementing the given strategy, configured by
  /// `options` (strategies ignore the knobs that do not apply — see
  /// storm/sampling/options.h). kAuto is resolved by the QueryOptimizer,
  /// not here (passing it is an error). kStratified returns a
  /// StratifiedSampler<3> over the RS-tree.
  Result<std::unique_ptr<SpatialSampler<3>>> NewSampler(
      SamplerStrategy strategy, uint64_t seed,
      const SamplingOptions& options = {}) const;

  /// Pre-0.9 convenience overload: `private_buffers` is the only knob.
  /// Kept for one release; new callers pass SamplingOptions.
  Result<std::unique_ptr<SpatialSampler<3>>> NewSampler(
      SamplerStrategy strategy, uint64_t seed, bool private_buffers) const {
    return NewSampler(strategy, seed,
                      SamplingOptions().WithPrivateBuffers(private_buffers));
  }

  /// Acquires the table read latch. Queries hold one of these for their
  /// whole execution so UpdateManager writers (Insert/Delete/InsertBatch,
  /// which take the latch exclusively inside) cannot mutate the indexes
  /// mid-query; N readers coexist freely.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(*latch_);
  }

  /// Lazily materialized numeric column, indexed by record id (NaN for
  /// missing/non-numeric/deleted). The pointer stays valid across updates.
  Result<const std::vector<double>*> NumericColumn(const std::string& field) const;

  /// Field accessors that go through the record store (no cache).
  Result<std::string> TextOf(RecordId id, const std::string& field) const;
  Result<double> NumberOf(RecordId id, const std::string& field) const;

  /// Inserts one document: appends to the store, extracts coordinates, and
  /// maintains every index and materialized column (the update-manager
  /// path). Durable tables log the insert to the WAL and sync it before
  /// applying — the insert is never acknowledged un-durably.
  Result<RecordId> Insert(const Value& doc);

  /// Deletes a record from the store and all indexes (WAL-logged first on
  /// durable tables).
  Status Delete(RecordId id);

  /// Inserts a batch. Durable tables validate every document up front,
  /// commit the whole batch as ONE WAL record with ONE sync (group commit),
  /// then apply — all-or-nothing, across crashes too. Non-durable tables
  /// apply sequentially and report how far they got.
  BatchInsertResult InsertBatch(const std::vector<Value>& docs);

  // --- Durability (config.durable tables only) ---

  bool durable() const { return wal_ != nullptr; }

  /// The shared simulated disk (null for non-durable tables). Tests crash
  /// it; Session::SimulateCrash stashes it for later Recover.
  std::shared_ptr<BlockManager> disk() const { return disk_; }

  /// Writes a checkpoint: flushes + syncs all data pages, persists the
  /// store directory and table metadata, starts a fresh WAL, and atomically
  /// flips the superblock to the new checkpoint (truncating the old WAL).
  /// A crash at ANY point leaves either the old or the new checkpoint
  /// fully intact. FailedPrecondition on non-durable tables.
  Status Checkpoint();

  /// Rebuilds a table from `disk` after a crash: loads the last complete
  /// checkpoint, replays the WAL tail (ignoring a torn final record),
  /// rebuilds the RS-/LS-trees and shards, and writes a fresh checkpoint.
  /// Idempotent: recovering twice yields the same table.
  static Result<Table> Recover(std::shared_ptr<BlockManager> disk);

 private:
  Table() = default;

  Result<Point3> ExtractPoint(const Value& doc) const;

  /// Store append + index/column maintenance, no WAL interaction (shared by
  /// Insert, InsertBatch, and WAL replay). `json` is the document's
  /// serialized form, produced once by ValidateInsert and reused for the
  /// WAL payload and the store append.
  Result<RecordId> ApplyInsert(const Value& doc, const Point3& p,
                               std::string_view json);

  /// Pre-WAL validation: coordinates extractable and the serialized form
  /// fits a page (everything that can fail before the log may not fail
  /// after it). Leaves the serialized document in `*json` so callers
  /// serialize exactly once per insert.
  Result<Point3> ValidateInsert(const Value& doc, std::string* json) const;

  std::string name_;
  Schema schema_;
  SpatioTemporalBinding binding_;
  TableConfig config_;
  std::shared_ptr<BlockManager> disk_;  ///< set iff durable
  std::unique_ptr<Wal> wal_;            ///< set iff durable
  PageId checkpoint_page_ = kInvalidPage;
  std::unique_ptr<RecordStore> store_;
  std::vector<Entry> entries_;
  std::unordered_map<RecordId, size_t> entry_pos_;
  std::unique_ptr<RsTree<3>> rs_;
  std::unique_ptr<LsTree<3>> ls_;
  std::unique_ptr<Cluster> cluster_;
  // Reader-writer latch: queries take it shared (ReadLock), mutations take
  // it exclusive. Behind unique_ptr so the Table stays movable.
  std::unique_ptr<std::shared_mutex> latch_ =
      std::make_unique<std::shared_mutex>();
  // Guards columns_ against two concurrent readers materializing at once
  // (reader vs writer exclusion already comes from latch_). Lock order:
  // latch_ before columns_mu_.
  mutable std::unique_ptr<std::mutex> columns_mu_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<std::string, std::unique_ptr<std::vector<double>>>
      columns_;
  mutable std::unique_ptr<std::atomic<uint64_t>> sampler_seq_ =
      std::make_unique<std::atomic<uint64_t>>(0);
  // Behind unique_ptr for movability, like latch_ and sampler_seq_.
  std::unique_ptr<std::atomic<uint64_t>> epoch_ =
      std::make_unique<std::atomic<uint64_t>>(NextTableEpoch());
};

}  // namespace storm

#endif  // STORM_QUERY_TABLE_H_
