#include "storm/query/lexer.h"

#include <cctype>
#include <charconv>

namespace storm {

Result<std::vector<Token>> TokenizeQuery(std::string_view query) {
  if (query.size() > kMaxQueryBytes) {
    return Status::InvalidArgument(
        "query text exceeds " + std::to_string(kMaxQueryBytes) + " bytes (" +
        std::to_string(query.size()) + ")");
  }
  std::vector<Token> tokens;
  size_t pos = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at offset " + std::to_string(pos));
  };
  while (pos < query.size()) {
    char c = query[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    Token tok;
    tok.offset = pos;
    if (c == '(') {
      tok.type = TokenType::kLParen;
      tok.text = "(";
      ++pos;
    } else if (c == ')') {
      tok.type = TokenType::kRParen;
      tok.text = ")";
      ++pos;
    } else if (c == ',') {
      tok.type = TokenType::kComma;
      tok.text = ",";
      ++pos;
    } else if (c == '*') {
      tok.type = TokenType::kStar;
      tok.text = "*";
      ++pos;
    } else if (c == '%') {
      tok.type = TokenType::kPercent;
      tok.text = "%";
      ++pos;
    } else if (c == '\'') {
      tok.type = TokenType::kString;
      ++pos;
      while (pos < query.size() && query[pos] != '\'') {
        tok.literal.push_back(query[pos]);
        ++pos;
      }
      if (pos >= query.size()) return fail("unterminated string literal");
      ++pos;  // closing quote
      tok.text = tok.literal;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.') {
      size_t start = pos;
      if (c == '-' || c == '+') ++pos;
      while (pos < query.size() &&
             (std::isdigit(static_cast<unsigned char>(query[pos])) ||
              query[pos] == '.' || query[pos] == 'e' || query[pos] == 'E' ||
              ((query[pos] == '-' || query[pos] == '+') &&
               (query[pos - 1] == 'e' || query[pos - 1] == 'E')))) {
        ++pos;
      }
      std::string_view text = query.substr(start, pos - start);
      double v = 0.0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || p != text.data() + text.size()) {
        return fail("invalid number '" + std::string(text) + "'");
      }
      tok.type = TokenType::kNumber;
      tok.text = std::string(text);
      tok.number = v;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < query.size() &&
             (std::isalnum(static_cast<unsigned char>(query[pos])) ||
              query[pos] == '_' || query[pos] == '.')) {
        ++pos;
      }
      tok.type = TokenType::kIdentifier;
      tok.literal = std::string(query.substr(start, pos - start));
      tok.text = tok.literal;
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
    } else {
      return fail(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = query.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace storm
