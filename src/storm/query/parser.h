// Recursive-descent parser for the STORM query language (grammar in
// ast.h).

#ifndef STORM_QUERY_PARSER_H_
#define STORM_QUERY_PARSER_H_

#include <string_view>

#include "storm/query/ast.h"
#include "storm/util/result.h"

namespace storm {

/// Parses one query string into an AST.
Result<QueryAst> ParseQuery(std::string_view query);

}  // namespace storm

#endif  // STORM_QUERY_PARSER_H_
