#include "storm/query/table.h"

#include <cmath>

#include "storm/obs/metrics.h"
#include "storm/sampling/query_first.h"
#include "storm/sampling/random_path.h"
#include "storm/sampling/sample_first.h"
#include "storm/sampling/stratified.h"
#include "storm/util/failpoint.h"
#include "storm/util/stopwatch.h"
#include "storm/wal/checkpoint.h"
#include "storm/wal/superblock.h"
#include "storm/wal/wal.h"

namespace storm {

uint64_t NextTableEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Out of line so the public header can forward-declare Wal.
Table::Table(Table&&) noexcept = default;
Table& Table::operator=(Table&&) noexcept = default;
Table::~Table() = default;

namespace {

Counter* CheckpointsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_checkpoints_total", "Table checkpoints completed");
  return c;
}

Counter* RecoveriesCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_recoveries_total", "Crash recoveries completed");
  return c;
}

Counter* ReplayedCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_recovery_replayed_records_total",
      "WAL records applied during recovery");
  return c;
}

Histogram* RecoveryDurationHistogram() {
  static Histogram* h = MetricsRegistry::Default().GetHistogram(
      "storm_recovery_duration_ms", "End-to-end crash recovery latency",
      MetricsRegistry::LatencyBucketsMs());
  return h;
}

}  // namespace

Result<Table> Table::Create(std::string name, const std::vector<Value>& docs,
                            const ImportOptions& import_options,
                            TableConfig config) {
  Table t;
  t.name_ = std::move(name);
  if (config.durable) {
    // The durability layer shares one disk between the record store, the
    // WAL, and checkpoint chains, rooted at a page-0 superblock.
    t.disk_ = config.store.disk != nullptr
                  ? config.store.disk
                  : std::make_shared<BlockManager>(config.store.page_size);
    STORM_RETURN_NOT_OK(FormatDisk(t.disk_.get()));
    config.store.disk = t.disk_;
  }
  t.config_ = config;
  t.store_ = std::make_unique<RecordStore>(config.store);
  Importer importer(t.store_.get());
  STORM_ASSIGN_OR_RETURN(ImportResult imported,
                         importer.ImportDocuments(docs, import_options));
  t.schema_ = std::move(imported.schema);
  t.binding_ = std::move(imported.binding);
  t.entries_ = std::move(imported.entries);
  for (size_t i = 0; i < t.entries_.size(); ++i) {
    t.entry_pos_[t.entries_[i].id] = i;
  }
  t.rs_ = std::make_unique<RsTree<3>>(t.entries_, config.rs, config.seed);
  if (config.build_ls_tree) {
    t.ls_ = std::make_unique<LsTree<3>>(t.entries_, config.ls, config.seed ^ 0x15);
  }
  if (config.num_shards > 1) {
    t.cluster_ = std::make_unique<Cluster>(t.entries_, config.num_shards,
                                           config.partitioning, config.rs,
                                           config.seed ^ 0x51);
  }
  if (config.durable) {
    // The initial import is not WAL-logged; this first checkpoint is what
    // makes it durable (Create is acknowledged only after it lands).
    STORM_RETURN_NOT_OK(t.Checkpoint());
  }
  return t;
}

Result<std::unique_ptr<SpatialSampler<3>>> Table::NewSampler(
    SamplerStrategy strategy, uint64_t seed,
    const SamplingOptions& options) const {
  uint64_t seq = sampler_seq_->fetch_add(1, std::memory_order_relaxed) + 1;
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * seq));
  switch (strategy) {
    case SamplerStrategy::kQueryFirst:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<QueryFirstSampler<3>>(&rs_->tree(), rng));
    case SamplerStrategy::kSampleFirst:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<SampleFirstSampler<3>>(&entries_, rng));
    case SamplerStrategy::kRandomPath:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<RandomPathSampler<3>>(&rs_->tree(), rng));
    case SamplerStrategy::kLsTree:
      if (ls_ == nullptr) {
        return Status::FailedPrecondition("table '" + name_ +
                                          "' was built without an LS-tree");
      }
      return ls_->NewSampler(rng);
    case SamplerStrategy::kRsTree:
      return rs_->NewSampler(rng,
                             /*shared_buffers=*/!options.private_buffers);
    case SamplerStrategy::kStratified:
      // The evaluator downcasts this to StratifiedSampler<3> for the
      // stratum-addressed estimator feed; keep it the concrete type (never
      // failover-wrapped).
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<StratifiedSampler<3>>(rs_.get(), options, rng));
    case SamplerStrategy::kDistributed: {
      if (cluster_ == nullptr) {
        return Status::FailedPrecondition(
            "table '" + name_ +
            "' is not sharded (set TableConfig::num_shards > 1)");
      }
      return cluster_->NewSampler(rng, options);
    }
    case SamplerStrategy::kAuto:
      break;
  }
  return Status::InvalidArgument(
      "kAuto must be resolved by the optimizer before NewSampler");
}

Result<const std::vector<double>*> Table::NumericColumn(
    const std::string& field) const {
  // Two concurrent readers may race to materialize the same field; the
  // mutex makes the second one find the first one's column.
  std::lock_guard<std::mutex> lock(*columns_mu_);
  auto it = columns_.find(field);
  if (it != columns_.end()) return const_cast<const std::vector<double>*>(it->second.get());
  auto column = std::make_unique<std::vector<double>>(
      store_->next_id(), std::numeric_limits<double>::quiet_NaN());
  Status st = store_->Scan([&](RecordId id, const Value& doc) {
    const Value* v = doc.FindPath(field);
    if (v != nullptr && v->is_number()) {
      (*column)[id] = v->AsDouble();
    }
    return true;
  });
  STORM_RETURN_NOT_OK(st);
  const std::vector<double>* raw = column.get();
  columns_.emplace(field, std::move(column));
  return raw;
}

Result<std::string> Table::TextOf(RecordId id, const std::string& field) const {
  STORM_ASSIGN_OR_RETURN(Value doc, store_->Get(id));
  const Value* v = doc.FindPath(field);
  if (v == nullptr) {
    return Status::NotFound("field '" + field + "' in record " +
                            std::to_string(id));
  }
  if (v->is_string()) return v->AsString();
  return v->ToJson();
}

Result<double> Table::NumberOf(RecordId id, const std::string& field) const {
  STORM_ASSIGN_OR_RETURN(Value doc, store_->Get(id));
  const Value* v = doc.FindPath(field);
  if (v == nullptr || !v->is_number()) {
    return Status::NotFound("numeric field '" + field + "' in record " +
                            std::to_string(id));
  }
  return v->AsDouble();
}

Result<Point3> Table::ExtractPoint(const Value& doc) const {
  auto coord = [&](const std::string& field, bool is_time) -> Result<double> {
    const Value* v = doc.FindPath(field);
    if (v == nullptr) return Status::InvalidArgument("missing field " + field);
    if (v->is_number()) return v->AsDouble();
    if (v->is_string() && is_time) {
      std::optional<double> t = ParseTimestamp(v->AsString());
      if (t.has_value()) return *t;
    }
    return Status::InvalidArgument("non-numeric coordinate field " + field);
  };
  STORM_ASSIGN_OR_RETURN(double x, coord(binding_.x_field, false));
  STORM_ASSIGN_OR_RETURN(double y, coord(binding_.y_field, false));
  double t = 0.0;
  if (binding_.HasTime()) {
    STORM_ASSIGN_OR_RETURN(t, coord(binding_.t_field, true));
  }
  return Point3(x, y, t);
}

Result<Point3> Table::ValidateInsert(const Value& doc,
                                     std::string* json) const {
  STORM_ASSIGN_OR_RETURN(Point3 p, ExtractPoint(doc));
  *json = doc.ToJson();
  size_t page_size = store_->disk()->page_size();
  if (json->size() > page_size) {
    return Status::InvalidArgument("document (" +
                                   std::to_string(json->size()) +
                                   " bytes) exceeds page size " +
                                   std::to_string(page_size));
  }
  return p;
}

Result<RecordId> Table::ApplyInsert(const Value& doc, const Point3& p,
                                    std::string_view json) {
  STORM_ASSIGN_OR_RETURN(RecordId id, store_->AppendSerialized(json));
  entries_.push_back({p, id});
  entry_pos_[id] = entries_.size() - 1;
  rs_->Insert(p, id);
  if (ls_ != nullptr) ls_->Insert(p, id);
  if (cluster_ != nullptr) cluster_->Insert(p, id);
  // Extend materialized columns.
  {
    std::lock_guard<std::mutex> lock(*columns_mu_);
    for (auto& [field, column] : columns_) {
      column->resize(store_->next_id(),
                     std::numeric_limits<double>::quiet_NaN());
      const Value* v = doc.FindPath(field);
      if (v != nullptr && v->is_number()) {
        (*column)[id] = v->AsDouble();
      }
    }
  }
  // Fresh epoch per applied mutation: cached sample reservoirs tagged with
  // the previous epoch stop matching immediately (correctness over reuse).
  epoch_->store(NextTableEpoch(), std::memory_order_release);
  return id;
}

Result<RecordId> Table::Insert(const Value& doc) {
  // Everything that can reject the document happens before the WAL append,
  // so a logged record always applies cleanly at replay.
  std::string json;
  STORM_ASSIGN_OR_RETURN(Point3 p, ValidateInsert(doc, &json));
  // Exclusive latch: no query may be sampling the indexes while they move.
  std::unique_lock<std::shared_mutex> write(*latch_);
  if (wal_ != nullptr) {
    Result<Lsn> lsn = wal_->AppendInsert(store_->next_id(), json);
    if (!lsn.ok()) return lsn.status();
    STORM_RETURN_NOT_OK(wal_->Sync());
  }
  return ApplyInsert(doc, p, json);
}

BatchInsertResult Table::InsertBatch(const std::vector<Value>& docs) {
  BatchInsertResult out;
  if (wal_ == nullptr) {
    // Non-durable: sequential, stops at the first failure and reports how
    // far it got.
    out.ids.reserve(docs.size());
    for (const Value& doc : docs) {
      Result<RecordId> id = Insert(doc);
      if (!id.ok()) {
        out.status = id.status();
        return out;
      }
      out.ids.push_back(*id);
    }
    out.atomic = out.ids.empty() || docs.size() == out.ids.size();
    return out;
  }
  // Durable: validate everything first, commit one WAL record with one
  // sync, then apply. Nothing is applied unless the whole batch is durable.
  // One exclusive latch hold for the whole batch — group commit is an
  // atomicity promise, so readers see none of it or all of it.
  std::unique_lock<std::shared_mutex> write(*latch_);
  out.atomic = true;
  std::vector<Point3> points;
  std::vector<std::string> payloads;
  points.reserve(docs.size());
  payloads.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string json;
    Result<Point3> p = ValidateInsert(docs[i], &json);
    if (!p.ok()) {
      out.status = Status(p.status().code(),
                          "batch document " + std::to_string(i) + ": " +
                              std::string(p.status().message()));
      return out;
    }
    points.push_back(*p);
    payloads.push_back(std::move(json));
  }
  if (!docs.empty()) {
    Result<Lsn> lsn = wal_->AppendBatchInsert(store_->next_id(), payloads);
    if (!lsn.ok()) {
      out.status = lsn.status();
      return out;
    }
    Status synced = wal_->Sync();
    if (!synced.ok()) {
      out.status = synced;
      return out;
    }
  }
  out.ids.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<RecordId> id = ApplyInsert(docs[i], points[i], payloads[i]);
    if (!id.ok()) {
      // Should be unreachable (validation ran, the WAL committed): report
      // honestly rather than pretend atomicity held in memory.
      out.status = id.status();
      out.atomic = false;
      return out;
    }
    out.ids.push_back(*id);
  }
  return out;
}

Status Table::Delete(RecordId id) {
  std::unique_lock<std::shared_mutex> write(*latch_);
  auto it = entry_pos_.find(id);
  if (it == entry_pos_.end()) {
    return Status::NotFound("record " + std::to_string(id));
  }
  if (wal_ != nullptr) {
    Result<Lsn> lsn = wal_->AppendDelete(id);
    if (!lsn.ok()) return lsn.status();
    STORM_RETURN_NOT_OK(wal_->Sync());
  }
  size_t pos = it->second;
  Point3 p = entries_[pos].point;
  STORM_RETURN_NOT_OK(store_->Delete(id));
  // Swap-remove from the raw entry table.
  entries_[pos] = entries_.back();
  entries_.pop_back();
  if (pos < entries_.size()) entry_pos_[entries_[pos].id] = pos;
  entry_pos_.erase(it);
  if (!rs_->Erase(p, id)) {
    return Status::Corruption("RS-tree lost record " + std::to_string(id));
  }
  if (ls_ != nullptr && !ls_->Erase(p, id)) {
    return Status::Corruption("LS-tree lost record " + std::to_string(id));
  }
  if (cluster_ != nullptr && !cluster_->Erase(p, id)) {
    return Status::Corruption("cluster lost record " + std::to_string(id));
  }
  {
    std::lock_guard<std::mutex> lock(*columns_mu_);
    for (auto& [field, column] : columns_) {
      if (id < column->size()) {
        (*column)[id] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  epoch_->store(NextTableEpoch(), std::memory_order_release);
  return Status::OK();
}

Status Table::Checkpoint() {
  if (disk_ == nullptr) {
    return Status::FailedPrecondition("table '" + name_ +
                                      "' is not durable (set "
                                      "TableConfig::durable)");
  }
  // Exclusive: the checkpoint must capture a quiescent store, and it swaps
  // the WAL out from under any would-be writer.
  std::unique_lock<std::shared_mutex> write(*latch_);
  STORM_FAILPOINT(kFailpointCheckpoint);
  // 1. Every record page becomes durable before the directory that names it.
  STORM_RETURN_NOT_OK(store_->pool()->Flush());
  STORM_RETURN_NOT_OK(disk_->Sync());
  // 2. Write the new checkpoint blob and a fresh (empty) WAL, both synced.
  TableCheckpoint ckpt;
  ckpt.table_name = name_;
  ckpt.binding = binding_;
  ckpt.seed = config_.seed;
  ckpt.build_ls_tree = config_.build_ls_tree;
  ckpt.num_shards = static_cast<uint32_t>(config_.num_shards);
  ckpt.partitioning = static_cast<uint8_t>(config_.partitioning);
  ckpt.rs_max_entries = static_cast<uint32_t>(config_.rs.rtree.max_entries);
  ckpt.rs_min_entries = static_cast<uint32_t>(config_.rs.rtree.min_entries);
  ckpt.rs_buffer_size = config_.rs.buffer_size;
  ckpt.rs_prefill = config_.rs.prefill;
  ckpt.ls_level_ratio = config_.ls.level_ratio;
  ckpt.ls_min_level_size = config_.ls.min_level_size;
  ckpt.ls_max_entries = static_cast<uint32_t>(config_.ls.rtree.max_entries);
  ckpt.ls_min_entries = static_cast<uint32_t>(config_.ls.rtree.min_entries);
  ckpt.pool_pages = config_.store.pool_pages;
  ckpt.next_lsn = wal_ != nullptr ? wal_->next_lsn() : 1;
  ckpt.store = store_->ExportState();
  STORM_ASSIGN_OR_RETURN(PageId new_ckpt_page,
                         WriteCheckpoint(disk_.get(), ckpt));
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<Wal> new_wal,
                         Wal::Create(disk_.get(), ckpt.next_lsn));
  // 3. The crash window the harness aims at: both chains are on disk but
  // the superblock still points at the old ones.
  STORM_FAILPOINT(kFailpointCheckpointPartial);
  // 4. The flip — a single page-0 write + sync. Before it: the old
  // checkpoint + WAL govern recovery. After it: the new ones do.
  PageId old_ckpt_page = checkpoint_page_;
  PageId old_wal_page = wal_ != nullptr ? wal_->first_page() : kInvalidPage;
  Superblock sb;
  sb.checkpoint_first = new_ckpt_page;
  sb.wal_first = new_wal->first_page();
  STORM_RETURN_NOT_OK(WriteSuperblock(disk_.get(), sb));
  checkpoint_page_ = new_ckpt_page;
  wal_ = std::move(new_wal);
  // 5. Truncation: the superseded chains' pages go back to the free list.
  // (A crash before these frees sync merely leaks the old pages until the
  // next checkpoint — documented limitation, never a correctness issue.)
  if (old_ckpt_page != kInvalidPage) {
    STORM_RETURN_NOT_OK(FreeCheckpointChain(disk_.get(), old_ckpt_page));
  }
  if (old_wal_page != kInvalidPage) {
    STORM_RETURN_NOT_OK(Wal::FreeChain(disk_.get(), old_wal_page));
  }
  STORM_RETURN_NOT_OK(disk_->Sync());
  CheckpointsCounter()->Increment();
  return Status::OK();
}

Result<Table> Table::Recover(std::shared_ptr<BlockManager> disk) {
  Stopwatch timer;
  STORM_ASSIGN_OR_RETURN(Superblock sb, ReadSuperblock(disk.get()));
  if (sb.checkpoint_first == kInvalidPage) {
    return Status::NotFound(
        "disk has no checkpoint (table creation never completed)");
  }
  STORM_ASSIGN_OR_RETURN(TableCheckpoint ckpt,
                         ReadCheckpoint(disk.get(), sb.checkpoint_first));

  Table t;
  t.name_ = ckpt.table_name;
  t.binding_ = ckpt.binding;
  t.disk_ = disk;
  t.checkpoint_page_ = sb.checkpoint_first;
  t.config_.durable = true;
  t.config_.seed = ckpt.seed;
  t.config_.build_ls_tree = ckpt.build_ls_tree;
  t.config_.num_shards = static_cast<int>(ckpt.num_shards);
  t.config_.partitioning = static_cast<Partitioning>(ckpt.partitioning);
  t.config_.rs.rtree.max_entries = static_cast<int>(ckpt.rs_max_entries);
  t.config_.rs.rtree.min_entries = static_cast<int>(ckpt.rs_min_entries);
  t.config_.rs.buffer_size = ckpt.rs_buffer_size;
  t.config_.rs.prefill = ckpt.rs_prefill;
  t.config_.ls.level_ratio = ckpt.ls_level_ratio;
  t.config_.ls.min_level_size = ckpt.ls_min_level_size;
  t.config_.ls.rtree.max_entries = static_cast<int>(ckpt.ls_max_entries);
  t.config_.ls.rtree.min_entries = static_cast<int>(ckpt.ls_min_entries);
  t.config_.store.page_size = disk->page_size();
  t.config_.store.pool_pages = ckpt.pool_pages;
  t.config_.store.disk = disk;
  t.store_ = std::make_unique<RecordStore>(t.config_.store);
  STORM_RETURN_NOT_OK(t.store_->RestoreState(std::move(ckpt.store)));

  // Replay the WAL tail into the store. Record ids are dense in append
  // order and the checkpoint restored the append cursor, so replay
  // reassigns exactly the ids the log recorded (verified per record).
  STORM_ASSIGN_OR_RETURN(WalReplay replay,
                         Wal::Replay(disk.get(), sb.wal_first));
  for (const WalRecord& rec : replay.records) {
    switch (rec.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kBatchInsert: {
        RecordId expect = rec.first_id;
        if (expect != t.store_->next_id()) {
          return Status::Corruption(
              "WAL replay id mismatch at LSN " + std::to_string(rec.lsn) +
              ": logged " + std::to_string(expect) + ", store at " +
              std::to_string(t.store_->next_id()));
        }
        for (const std::string& json : rec.docs) {
          // Parse to verify the payload, but append the logged bytes
          // themselves: the recovered record is byte-identical to the one
          // the crashed process stored.
          STORM_RETURN_NOT_OK(Value::Parse(json).status());
          STORM_ASSIGN_OR_RETURN(RecordId id, t.store_->AppendSerialized(json));
          if (id != expect) {
            return Status::Corruption("WAL replay assigned id " +
                                      std::to_string(id) + ", logged " +
                                      std::to_string(expect));
          }
          ++expect;
        }
        break;
      }
      case WalRecordType::kDelete: {
        Status st = t.store_->Delete(rec.first_id);
        // The delete was validated against a live record before logging;
        // absence now means the log and checkpoint disagree.
        if (!st.ok()) {
          return Status::Corruption("WAL replay delete of record " +
                                    std::to_string(rec.first_id) + " at LSN " +
                                    std::to_string(rec.lsn) + ": " +
                                    std::string(st.message()));
        }
        break;
      }
    }
    ReplayedCounter()->Increment();
  }

  // Rebuild what checkpoints deliberately do not persist: the schema, the
  // (x, y, t) entry table, and the index structures, all from the store.
  SchemaDiscovery discovery;
  Status scan = t.store_->Scan([&](RecordId, const Value& doc) {
    discovery.Observe(doc);
    return true;
  });
  STORM_RETURN_NOT_OK(scan);
  t.schema_ = discovery.Discover();
  t.entries_.reserve(t.store_->size());
  Status extract = Status::OK();
  scan = t.store_->Scan([&](RecordId id, const Value& doc) {
    Result<Point3> p = t.ExtractPoint(doc);
    if (!p.ok()) {
      extract = Status(p.status().code(),
                       "record " + std::to_string(id) + ": " +
                           std::string(p.status().message()));
      return false;
    }
    t.entries_.push_back({*p, id});
    return true;
  });
  STORM_RETURN_NOT_OK(scan);
  STORM_RETURN_NOT_OK(extract);
  for (size_t i = 0; i < t.entries_.size(); ++i) {
    t.entry_pos_[t.entries_[i].id] = i;
  }
  t.rs_ = std::make_unique<RsTree<3>>(t.entries_, t.config_.rs, t.config_.seed);
  if (t.config_.build_ls_tree) {
    t.ls_ = std::make_unique<LsTree<3>>(t.entries_, t.config_.ls,
                                        t.config_.seed ^ 0x15);
  }
  if (t.config_.num_shards > 1) {
    t.cluster_ = std::make_unique<Cluster>(t.entries_, t.config_.num_shards,
                                           t.config_.partitioning,
                                           t.config_.rs, t.config_.seed ^ 0x51);
  }

  // A fresh checkpoint makes the recovered state durable — which is also
  // what makes double-recovery idempotent. The replayed WAL chain can only
  // be freed AFTER the flip inside Checkpoint(): freeing it earlier would
  // let the new chains recycle its pages while the old superblock still
  // points at it, destroying the fallback a mid-checkpoint crash needs.
  STORM_RETURN_NOT_OK(t.Checkpoint());
  if (sb.wal_first != kInvalidPage) {
    STORM_RETURN_NOT_OK(Wal::FreeChain(disk.get(), sb.wal_first));
    STORM_RETURN_NOT_OK(disk->Sync());
  }
  RecoveriesCounter()->Increment();
  RecoveryDurationHistogram()->Observe(timer.ElapsedMillis());
  return t;
}

}  // namespace storm
