#include "storm/query/table.h"

#include <cmath>

#include "storm/sampling/query_first.h"
#include "storm/sampling/random_path.h"
#include "storm/sampling/sample_first.h"

namespace storm {

Result<Table> Table::Create(std::string name, const std::vector<Value>& docs,
                            const ImportOptions& import_options,
                            TableConfig config) {
  Table t;
  t.name_ = std::move(name);
  t.config_ = config;
  t.store_ = std::make_unique<RecordStore>(config.store);
  Importer importer(t.store_.get());
  STORM_ASSIGN_OR_RETURN(ImportResult imported,
                         importer.ImportDocuments(docs, import_options));
  t.schema_ = std::move(imported.schema);
  t.binding_ = std::move(imported.binding);
  t.entries_ = std::move(imported.entries);
  for (size_t i = 0; i < t.entries_.size(); ++i) {
    t.entry_pos_[t.entries_[i].id] = i;
  }
  t.rs_ = std::make_unique<RsTree<3>>(t.entries_, config.rs, config.seed);
  if (config.build_ls_tree) {
    t.ls_ = std::make_unique<LsTree<3>>(t.entries_, config.ls, config.seed ^ 0x15);
  }
  if (config.num_shards > 1) {
    t.cluster_ = std::make_unique<Cluster>(t.entries_, config.num_shards,
                                           config.partitioning, config.rs,
                                           config.seed ^ 0x51);
  }
  return t;
}

Result<std::unique_ptr<SpatialSampler<3>>> Table::NewSampler(
    SamplerStrategy strategy, uint64_t seed) const {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * ++sampler_seq_));
  switch (strategy) {
    case SamplerStrategy::kQueryFirst:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<QueryFirstSampler<3>>(&rs_->tree(), rng));
    case SamplerStrategy::kSampleFirst:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<SampleFirstSampler<3>>(&entries_, rng));
    case SamplerStrategy::kRandomPath:
      return std::unique_ptr<SpatialSampler<3>>(
          std::make_unique<RandomPathSampler<3>>(&rs_->tree(), rng));
    case SamplerStrategy::kLsTree:
      if (ls_ == nullptr) {
        return Status::FailedPrecondition("table '" + name_ +
                                          "' was built without an LS-tree");
      }
      return ls_->NewSampler(rng);
    case SamplerStrategy::kRsTree:
      return rs_->NewSampler(rng);
    case SamplerStrategy::kDistributed:
      if (cluster_ == nullptr) {
        return Status::FailedPrecondition(
            "table '" + name_ +
            "' is not sharded (set TableConfig::num_shards > 1)");
      }
      return cluster_->NewSampler(rng);
    case SamplerStrategy::kAuto:
      break;
  }
  return Status::InvalidArgument(
      "kAuto must be resolved by the optimizer before NewSampler");
}

Result<const std::vector<double>*> Table::NumericColumn(
    const std::string& field) const {
  auto it = columns_.find(field);
  if (it != columns_.end()) return const_cast<const std::vector<double>*>(it->second.get());
  auto column = std::make_unique<std::vector<double>>(
      store_->next_id(), std::numeric_limits<double>::quiet_NaN());
  Status st = store_->Scan([&](RecordId id, const Value& doc) {
    const Value* v = doc.FindPath(field);
    if (v != nullptr && v->is_number()) {
      (*column)[id] = v->AsDouble();
    }
    return true;
  });
  STORM_RETURN_NOT_OK(st);
  const std::vector<double>* raw = column.get();
  columns_.emplace(field, std::move(column));
  return raw;
}

Result<std::string> Table::TextOf(RecordId id, const std::string& field) const {
  STORM_ASSIGN_OR_RETURN(Value doc, store_->Get(id));
  const Value* v = doc.FindPath(field);
  if (v == nullptr) {
    return Status::NotFound("field '" + field + "' in record " +
                            std::to_string(id));
  }
  if (v->is_string()) return v->AsString();
  return v->ToJson();
}

Result<double> Table::NumberOf(RecordId id, const std::string& field) const {
  STORM_ASSIGN_OR_RETURN(Value doc, store_->Get(id));
  const Value* v = doc.FindPath(field);
  if (v == nullptr || !v->is_number()) {
    return Status::NotFound("numeric field '" + field + "' in record " +
                            std::to_string(id));
  }
  return v->AsDouble();
}

Result<Point3> Table::ExtractPoint(const Value& doc) const {
  auto coord = [&](const std::string& field, bool is_time) -> Result<double> {
    const Value* v = doc.FindPath(field);
    if (v == nullptr) return Status::InvalidArgument("missing field " + field);
    if (v->is_number()) return v->AsDouble();
    if (v->is_string() && is_time) {
      std::optional<double> t = ParseTimestamp(v->AsString());
      if (t.has_value()) return *t;
    }
    return Status::InvalidArgument("non-numeric coordinate field " + field);
  };
  STORM_ASSIGN_OR_RETURN(double x, coord(binding_.x_field, false));
  STORM_ASSIGN_OR_RETURN(double y, coord(binding_.y_field, false));
  double t = 0.0;
  if (binding_.HasTime()) {
    STORM_ASSIGN_OR_RETURN(t, coord(binding_.t_field, true));
  }
  return Point3(x, y, t);
}

Result<RecordId> Table::Insert(const Value& doc) {
  STORM_ASSIGN_OR_RETURN(Point3 p, ExtractPoint(doc));
  STORM_ASSIGN_OR_RETURN(RecordId id, store_->Append(doc));
  entries_.push_back({p, id});
  entry_pos_[id] = entries_.size() - 1;
  rs_->Insert(p, id);
  if (ls_ != nullptr) ls_->Insert(p, id);
  if (cluster_ != nullptr) cluster_->Insert(p, id);
  // Extend materialized columns.
  for (auto& [field, column] : columns_) {
    column->resize(store_->next_id(), std::numeric_limits<double>::quiet_NaN());
    const Value* v = doc.FindPath(field);
    if (v != nullptr && v->is_number()) {
      (*column)[id] = v->AsDouble();
    }
  }
  return id;
}

Status Table::Delete(RecordId id) {
  auto it = entry_pos_.find(id);
  if (it == entry_pos_.end()) {
    return Status::NotFound("record " + std::to_string(id));
  }
  size_t pos = it->second;
  Point3 p = entries_[pos].point;
  STORM_RETURN_NOT_OK(store_->Delete(id));
  // Swap-remove from the raw entry table.
  entries_[pos] = entries_.back();
  entries_.pop_back();
  if (pos < entries_.size()) entry_pos_[entries_[pos].id] = pos;
  entry_pos_.erase(it);
  if (!rs_->Erase(p, id)) {
    return Status::Corruption("RS-tree lost record " + std::to_string(id));
  }
  if (ls_ != nullptr && !ls_->Erase(p, id)) {
    return Status::Corruption("LS-tree lost record " + std::to_string(id));
  }
  if (cluster_ != nullptr && !cluster_->Erase(p, id)) {
    return Status::Corruption("cluster lost record " + std::to_string(id));
  }
  for (auto& [field, column] : columns_) {
    if (id < column->size()) {
      (*column)[id] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return Status::OK();
}

}  // namespace storm
