// Tokenizer for the STORM query language.

#ifndef STORM_QUERY_LEXER_H_
#define STORM_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "storm/util/result.h"

namespace storm {

enum class TokenType {
  kIdentifier,  ///< bare word (keywords are identifiers; parser decides)
  kNumber,
  kString,   ///< '...'-quoted
  kLParen,
  kRParen,
  kComma,
  kStar,
  kPercent,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< raw text (identifiers upper-cased for matching)
  std::string literal;  ///< original spelling (string contents, identifier case)
  double number = 0.0;
  size_t offset = 0;  ///< byte offset in the input, for error messages

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword match against an UPPERCASE name.
  bool IsKeyword(std::string_view upper) const {
    return type == TokenType::kIdentifier && text == upper;
  }
};

/// Hard ceiling on query text length. Query strings arrive off the wire
/// from untrusted peers (server/protocol.h), so the lexer bounds its input
/// instead of tokenizing arbitrarily large payloads.
constexpr size_t kMaxQueryBytes = 1u << 20;

/// Tokenizes a query; fails on oversized input, unterminated strings, or
/// stray characters.
Result<std::vector<Token>> TokenizeQuery(std::string_view query);

}  // namespace storm

#endif  // STORM_QUERY_LEXER_H_
