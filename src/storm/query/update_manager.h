// UpdateManager: applies ad-hoc data updates to a registered table so that
// "a correct set of online spatio-temporal samples can always be returned
// with respect to the latest records" (§2, updates demo).
//
// The heavy lifting lives in Table::Insert/Delete (store append/tombstone,
// R-tree maintenance, LS-tree level trees, RS-tree buffer invalidation);
// the manager adds batching and bookkeeping.

#ifndef STORM_QUERY_UPDATE_MANAGER_H_
#define STORM_QUERY_UPDATE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "storm/query/table.h"

namespace storm {

class UpdateManager {
 public:
  explicit UpdateManager(Table* table) : table_(table) {}

  /// Inserts one document into the table and all its indexes.
  Result<RecordId> Insert(const Value& doc);

  /// Inserts a batch of documents, reporting the applied ids structurally
  /// (never just a count buried in an error string).
  ///
  /// Semantics depend on the table's durability mode:
  ///  - Durable tables: pre-WAL validation rejects the whole batch before
  ///    anything is logged, then the batch commits through a single WAL
  ///    record + one group-commit sync — all-or-nothing, including across
  ///    crashes (`result.atomic == true`, `result.ids` empty on failure).
  ///  - Non-durable tables: documents apply sequentially; on failure
  ///    `result.ids` holds exactly the documents applied before the stop
  ///    (`result.atomic == false` for such partial outcomes).
  BatchInsertResult InsertBatch(const std::vector<Value>& docs);

  /// Deletes a record everywhere.
  Status Delete(RecordId id);

  uint64_t inserts_applied() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  uint64_t deletes_applied() const {
    return deletes_.load(std::memory_order_relaxed);
  }

 private:
  Table* table_;
  // Mutations already serialize on the table's write latch; these counters
  // are atomic so concurrent callers (e.g. several server connections
  // inserting into one table) keep the bookkeeping exact.
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
};

}  // namespace storm

#endif  // STORM_QUERY_UPDATE_MANAGER_H_
