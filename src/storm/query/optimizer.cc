#include "storm/query/optimizer.h"

#include <algorithm>
#include <cmath>

namespace storm {

double QueryOptimizer::EstimateCardinality(const Table& table,
                                           const Rect3& query) const {
  uint64_t n = table.size();
  if (n == 0) return 0.0;
  const LsTree<3>* ls = table.ls_tree();
  if (ls != nullptr && ls->num_levels() > 1) {
    // Count matches in the (small) top level and scale by the inverse
    // sampling rate. Cost: a range count over ~min_level_size entries.
    int top = ls->num_levels() - 1;
    uint64_t matches = ls->tree(top).RangeCount(query);
    double rate = std::pow(0.5, top);  // level_ratio is 1/2 by default
    // Recover the actual ratio from the level sizes to stay correct for
    // non-default configurations.
    if (ls->tree(0).size() > 0 && ls->tree(top).size() > 0) {
      double implied = std::pow(
          static_cast<double>(ls->tree(top).size()) /
              static_cast<double>(ls->tree(0).size()),
          1.0 / top);
      if (implied > 0 && implied < 1) rate = std::pow(implied, top);
    }
    return static_cast<double>(matches) / rate;
  }
  // Geometric fallback: volume fraction of the query inside the data MBR,
  // axis-wise, assuming (wrongly but cheaply) uniform data.
  Rect3 bounds = table.bounds();
  if (bounds.IsEmpty()) return 0.0;
  Rect3 clipped = Rect3::Intersection(query, bounds);
  if (clipped.IsEmpty()) return 0.0;
  double frac = 1.0;
  for (int d = 0; d < 3; ++d) {
    double span = bounds.hi()[d] - bounds.lo()[d];
    if (span <= 0) continue;
    frac *= (clipped.hi()[d] - clipped.lo()[d]) / span;
  }
  return frac * static_cast<double>(n);
}

bool QueryOptimizer::ShouldStratify(const Table& table,
                                    const OptimizerDecision& decision,
                                    bool prefer) const {
  const auto* root = table.rs_tree().tree().root();
  if (root == nullptr || root->is_leaf) return false;  // nothing to split
  if (prefer) return true;
  if (decision.strategy != SamplerStrategy::kRsTree) return false;
  if (decision.estimated_cardinality < model_.stratified_min_cardinality) {
    return false;
  }
  return root->children.size() >= model_.stratified_min_fanout;
}

OptimizerDecision QueryOptimizer::Choose(const Table& table, const Rect3& query,
                                         uint64_t expected_k) const {
  OptimizerDecision d;
  uint64_t n = table.size();
  d.estimated_cardinality = EstimateCardinality(table, query);
  d.estimated_selectivity =
      n > 0 ? d.estimated_cardinality / static_cast<double>(n) : 0.0;
  uint64_t k = expected_k > 0 ? expected_k : model_.default_expected_k;

  if (n == 0) {
    d.strategy = SamplerStrategy::kQueryFirst;
    d.reason = "empty table";
    return d;
  }
  if (d.estimated_cardinality < 1.0) {
    d.strategy = SamplerStrategy::kQueryFirst;
    d.reason = "estimated empty result; QueryFirst proves emptiness cheaply";
    return d;
  }
  if (static_cast<double>(k) >=
      model_.query_first_min_fraction * d.estimated_cardinality) {
    d.strategy = SamplerStrategy::kQueryFirst;
    d.reason = "expected k consumes most of the result; report once";
    return d;
  }
  if (d.estimated_selectivity >= model_.sample_first_min_selectivity) {
    d.strategy = SamplerStrategy::kSampleFirst;
    d.reason = "query covers a large fraction of P; rejection is cheap";
    return d;
  }
  if (n <= model_.memory_resident_entries) {
    d.strategy = SamplerStrategy::kRandomPath;
    d.reason = "small memory-resident table; random walks are cache-friendly";
    return d;
  }
  d.strategy = SamplerStrategy::kRsTree;
  d.reason = "default: buffered sampling amortizes index descents";
  return d;
}

}  // namespace storm
