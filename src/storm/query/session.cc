#include "storm/query/session.h"

#include <fstream>
#include <mutex>
#include <shared_mutex>

#include "storm/obs/trace_export.h"

namespace storm {

Status Session::CreateTable(const std::string& name,
                            const std::vector<Value>& docs,
                            const ImportOptions& import_options,
                            const TableConfig& config) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  STORM_ASSIGN_OR_RETURN(Table table,
                         Table::Create(name, docs, import_options, config));
  auto owned = std::make_unique<Table>(std::move(table));
  updaters_[name] = std::make_unique<UpdateManager>(owned.get());
  tables_[name] = std::move(owned);
  return Status::OK();
}

Status Session::ImportFile(const std::string& name, const std::string& path,
                           const ImportOptions& import_options,
                           const TableConfig& config) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  Result<std::vector<Value>> docs = Status::NotSupported("unknown extension");
  if (ends_with(".csv")) {
    docs = ParseCsvFile(path);
  } else if (ends_with(".tsv")) {
    CsvOptions options;
    options.delimiter = '\t';
    docs = ParseCsvFile(path, options);
  } else if (ends_with(".jsonl") || ends_with(".ndjson")) {
    docs = ParseJsonlFile(path);
  } else {
    return Status::NotSupported(
        "cannot infer format of '" + path +
        "' (supported: .csv, .tsv, .jsonl, .ndjson)");
  }
  if (!docs.ok()) return docs.status();
  return CreateTable(name, *docs, import_options, config);
}

Status Session::SaveTable(const std::string& name, const std::string& path) {
  STORM_ASSIGN_OR_RETURN(Table * table, GetTable(name));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  Status scan = table->store().Scan([&](RecordId, const Value& doc) {
    out << doc.ToJson() << '\n';
    return out.good();
  });
  STORM_RETURN_NOT_OK(scan);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status Session::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "'");
  }
  updaters_.erase(name);
  return Status::OK();
}

Result<Table*> Session::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

std::vector<std::string> Session::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<QueryResult> Session::Execute(const std::string& query,
                                     const ExecOptions& options) {
  std::shared_ptr<QueryProfile> profile;
  if (options.profile) {
    profile = std::make_shared<QueryProfile>();
    profile->query = query;
  }
  Result<QueryAst> ast = [&]() -> Result<QueryAst> {
    if (profile == nullptr) return ParseQuery(query);
    QueryProfile::ScopedSpan parse = profile->Span("parse");
    Result<QueryAst> parsed = ParseQuery(query);
    parse.End();
    return parsed;
  }();
  if (!ast.ok()) return ast.status();
  return ExecuteAstInternal(*ast, std::move(profile), options);
}

Result<QueryResult> Session::ExecuteAst(const QueryAst& ast,
                                        const ExecOptions& options) {
  std::shared_ptr<QueryProfile> profile;
  if (options.profile) profile = std::make_shared<QueryProfile>();
  return ExecuteAstInternal(ast, std::move(profile), options);
}

Result<QueryResult> Session::ExecuteAstInternal(
    const QueryAst& ast, std::shared_ptr<QueryProfile> profile,
    const ExecOptions& options) {
  // Every query runs under a trace identity: the caller's when provided
  // (RemoteClient / the server propagating a wire context), otherwise a
  // fresh unsampled one minted here — so log lines and flight-recorder
  // events are correlatable even for untraced local queries.
  const TraceContext trace =
      options.trace.valid() ? options.trace : TraceContext::Mint(false);
  ScopedTraceContext trace_scope(trace);
  STORM_ASSIGN_OR_RETURN(Table * table, GetTable(ast.table));
  // Hold the table's read latch for the whole evaluation: query threads
  // share it, UpdateManager writers take it exclusively, so a query never
  // observes a half-applied insert or delete.
  std::shared_lock<std::shared_mutex> read_latch = table->ReadLock();
  QueryEvaluator evaluator(table, optimizer_);
  if (profile != nullptr) {
    profile->trace = trace;
    profile->table = table->name();
    // Spans opened from here on snapshot the table's simulated-disk counters.
    profile->SetIoSource(&table->store().live_io_stats());
    evaluator.set_profile(profile.get());
  }
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (profile == nullptr) return evaluator.Execute(ast, options);
    QueryProfile::ScopedSpan exec = profile->Span("execute");
    Result<QueryResult> run = evaluator.Execute(ast, options);
    exec.End();
    profile->Finish();
    return run;
  }();
  if (result.ok()) {
    if (profile != nullptr && trace.sampled) {
      TraceSink::Default().Record(*profile);
    }
    result->profile = std::move(profile);
  }
  return result;
}

Result<UpdateManager*> Session::Updates(const std::string& table) {
  auto it = updaters_.find(table);
  if (it == updaters_.end()) return Status::NotFound("table '" + table + "'");
  return it->second.get();
}

Status Session::Checkpoint(const std::string& table) {
  STORM_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  return t->Checkpoint();
}

Status Session::SimulateCrash(const std::string& table) {
  STORM_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  std::shared_ptr<BlockManager> disk = t->disk();
  if (disk == nullptr) {
    return Status::FailedPrecondition("table '" + table +
                                      "' is not durable; nothing to crash");
  }
  // Process death first, power loss second: the table (and its buffer
  // pool, whose destructor flushes dirty frames) must be gone before
  // Crash() rolls back everything unsynced — otherwise the destructor's
  // writes would survive like a graceful shutdown.
  tables_.erase(table);
  updaters_.erase(table);
  disk->Crash();
  crashed_disks_[table] = std::move(disk);
  return Status::OK();
}

Status Session::Recover(const std::string& table) {
  auto it = crashed_disks_.find(table);
  if (it == crashed_disks_.end()) {
    return Status::NotFound("no crashed disk for table '" + table +
                            "' (use SimulateCrash first)");
  }
  if (tables_.contains(table)) {
    return Status::AlreadyExists("table '" + table + "'");
  }
  STORM_ASSIGN_OR_RETURN(Table recovered, Table::Recover(it->second));
  auto owned = std::make_unique<Table>(std::move(recovered));
  updaters_[table] = std::make_unique<UpdateManager>(owned.get());
  tables_[table] = std::move(owned);
  crashed_disks_.erase(it);
  return Status::OK();
}

}  // namespace storm
