#include "storm/query/session.h"

#include <fstream>

namespace storm {

Status Session::CreateTable(const std::string& name,
                            const std::vector<Value>& docs,
                            const ImportOptions& import_options,
                            const TableConfig& config) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  STORM_ASSIGN_OR_RETURN(Table table,
                         Table::Create(name, docs, import_options, config));
  auto owned = std::make_unique<Table>(std::move(table));
  updaters_[name] = std::make_unique<UpdateManager>(owned.get());
  tables_[name] = std::move(owned);
  return Status::OK();
}

Status Session::ImportFile(const std::string& name, const std::string& path,
                           const ImportOptions& import_options,
                           const TableConfig& config) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  Result<std::vector<Value>> docs = Status::NotSupported("unknown extension");
  if (ends_with(".csv")) {
    docs = ParseCsvFile(path);
  } else if (ends_with(".tsv")) {
    CsvOptions options;
    options.delimiter = '\t';
    docs = ParseCsvFile(path, options);
  } else if (ends_with(".jsonl") || ends_with(".ndjson")) {
    docs = ParseJsonlFile(path);
  } else {
    return Status::NotSupported(
        "cannot infer format of '" + path +
        "' (supported: .csv, .tsv, .jsonl, .ndjson)");
  }
  if (!docs.ok()) return docs.status();
  return CreateTable(name, *docs, import_options, config);
}

Status Session::SaveTable(const std::string& name, const std::string& path) {
  STORM_ASSIGN_OR_RETURN(Table * table, GetTable(name));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  Status scan = table->store().Scan([&](RecordId, const Value& doc) {
    out << doc.ToJson() << '\n';
    return out.good();
  });
  STORM_RETURN_NOT_OK(scan);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status Session::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "'");
  }
  updaters_.erase(name);
  return Status::OK();
}

Result<Table*> Session::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

std::vector<std::string> Session::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<QueryResult> Session::Execute(const std::string& query,
                                     const ProgressFn& progress,
                                     const ExecOptions& options) {
  auto profile = std::make_shared<QueryProfile>();
  profile->query = query;
  QueryProfile::ScopedSpan parse = profile->Span("parse");
  Result<QueryAst> ast = ParseQuery(query);
  parse.End();
  if (!ast.ok()) return ast.status();
  return ExecuteAst(*ast, progress, std::move(profile), options);
}

Result<QueryResult> Session::ExecuteAst(const QueryAst& ast,
                                        const ProgressFn& progress,
                                        const ExecOptions& options) {
  return ExecuteAst(ast, progress, std::make_shared<QueryProfile>(), options);
}

Result<QueryResult> Session::ExecuteAst(const QueryAst& ast,
                                        const ProgressFn& progress,
                                        std::shared_ptr<QueryProfile> profile,
                                        const ExecOptions& options) {
  STORM_ASSIGN_OR_RETURN(Table * table, GetTable(ast.table));
  profile->table = table->name();
  // Spans opened from here on snapshot the table's simulated-disk counters.
  profile->SetIoSource(&table->store().io_stats());
  QueryEvaluator evaluator(table, optimizer_);
  evaluator.set_profile(profile.get());
  evaluator.set_deadline_ms(options.deadline_ms);
  evaluator.set_cancel_token(options.cancel);
  QueryProfile::ScopedSpan exec = profile->Span("execute");
  Result<QueryResult> result = evaluator.Execute(ast, progress);
  exec.End();
  profile->Finish();
  if (result.ok()) result->profile = std::move(profile);
  return result;
}

Result<UpdateManager*> Session::Updates(const std::string& table) {
  auto it = updaters_.find(table);
  if (it == updaters_.end()) return Status::NotFound("table '" + table + "'");
  return it->second.get();
}

Status Session::Checkpoint(const std::string& table) {
  STORM_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  return t->Checkpoint();
}

Status Session::SimulateCrash(const std::string& table) {
  STORM_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  std::shared_ptr<BlockManager> disk = t->disk();
  if (disk == nullptr) {
    return Status::FailedPrecondition("table '" + table +
                                      "' is not durable; nothing to crash");
  }
  // Process death first, power loss second: the table (and its buffer
  // pool, whose destructor flushes dirty frames) must be gone before
  // Crash() rolls back everything unsynced — otherwise the destructor's
  // writes would survive like a graceful shutdown.
  tables_.erase(table);
  updaters_.erase(table);
  disk->Crash();
  crashed_disks_[table] = std::move(disk);
  return Status::OK();
}

Status Session::Recover(const std::string& table) {
  auto it = crashed_disks_.find(table);
  if (it == crashed_disks_.end()) {
    return Status::NotFound("no crashed disk for table '" + table +
                            "' (use SimulateCrash first)");
  }
  if (tables_.contains(table)) {
    return Status::AlreadyExists("table '" + table + "'");
  }
  STORM_ASSIGN_OR_RETURN(Table recovered, Table::Recover(it->second));
  auto owned = std::make_unique<Table>(std::move(recovered));
  updaters_[table] = std::make_unique<UpdateManager>(owned.get());
  tables_[table] = std::move(owned);
  crashed_disks_.erase(it);
  return Status::OK();
}

}  // namespace storm
