#include "storm/query/parser.h"

#include <cmath>

#include "storm/connector/importer.h"
#include "storm/query/lexer.h"

namespace storm {

std::string_view SamplerStrategyToString(SamplerStrategy s) {
  switch (s) {
    case SamplerStrategy::kAuto:
      return "AUTO";
    case SamplerStrategy::kQueryFirst:
      return "QUERYFIRST";
    case SamplerStrategy::kSampleFirst:
      return "SAMPLEFIRST";
    case SamplerStrategy::kRandomPath:
      return "RANDOMPATH";
    case SamplerStrategy::kLsTree:
      return "LSTREE";
    case SamplerStrategy::kRsTree:
      return "RSTREE";
    case SamplerStrategy::kDistributed:
      return "DISTRIBUTED";
    case SamplerStrategy::kStratified:
      return "STRATIFIED";
  }
  return "?";
}

std::string_view QueryTaskToString(QueryTask t) {
  switch (t) {
    case QueryTask::kAggregate:
      return "aggregate";
    case QueryTask::kQuantile:
      return "quantile";
    case QueryTask::kKde:
      return "kde";
    case QueryTask::kTopTerms:
      return "topterms";
    case QueryTask::kCluster:
      return "cluster";
    case QueryTask::kTrajectory:
      return "trajectory";
  }
  return "?";
}

namespace {

// Converts an untrusted numeric literal to an integer in [min, max].
// A static_cast from a double outside the target type's range is undefined
// behaviour, and query text arrives off the wire (server/protocol.h), so
// every integer clause parameter funnels through this range check first.
Result<int64_t> CheckedInt(double v, int64_t min, int64_t max,
                           const char* what) {
  if (!std::isfinite(v) || v < static_cast<double>(min) ||
      v > static_cast<double>(max)) {
    return Status::InvalidArgument(std::string(what) + " must be in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "]");
  }
  return static_cast<int64_t>(v);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> Parse() {
    QueryAst ast;
    if (Cur().IsKeyword("EXPLAIN")) {
      ast.explain = true;
      Advance();
    }
    STORM_RETURN_NOT_OK(Expect("SELECT"));
    STORM_RETURN_NOT_OK(ParseHead(&ast));
    STORM_RETURN_NOT_OK(Expect("FROM"));
    if (!Cur().Is(TokenType::kIdentifier)) return Fail("expected table name");
    ast.table = Cur().literal;
    Advance();
    STORM_RETURN_NOT_OK(ParseClauses(&ast));
    if (!Cur().Is(TokenType::kEnd)) return Fail("unexpected trailing input");
    return ast;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near offset " +
                                   std::to_string(Cur().offset));
  }

  Status Expect(std::string_view keyword) {
    if (!Cur().IsKeyword(keyword)) {
      return Fail("expected " + std::string(keyword));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectToken(TokenType t, const char* what) {
    if (!Cur().Is(t)) return Fail(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<double> ExpectNumber() {
    if (!Cur().Is(TokenType::kNumber)) return Status(Fail("expected number"));
    double v = Cur().number;
    Advance();
    return v;
  }

  Result<std::string> ExpectIdentifier() {
    if (!Cur().Is(TokenType::kIdentifier)) {
      return Status(Fail("expected identifier"));
    }
    std::string v = Cur().literal;
    Advance();
    return v;
  }

  Status ParseHead(QueryAst* ast) {
    static const std::pair<std::string_view, AggregateKind> kAggs[] = {
        {"AVG", AggregateKind::kAvg},           {"MEAN", AggregateKind::kAvg},
        {"SUM", AggregateKind::kSum},           {"COUNT", AggregateKind::kCount},
        {"VARIANCE", AggregateKind::kVariance}, {"VAR", AggregateKind::kVariance},
        {"STDDEV", AggregateKind::kStddev},     {"MIN", AggregateKind::kMin},
        {"MAX", AggregateKind::kMax},
    };
    for (const auto& [kw, kind] : kAggs) {
      if (Cur().IsKeyword(kw)) {
        Advance();
        ast->task = QueryTask::kAggregate;
        ast->aggregate = kind;
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
        if (Cur().Is(TokenType::kStar)) {
          if (kind != AggregateKind::kCount) {
            return Fail("'*' is only valid in COUNT(*)");
          }
          ast->attribute = "*";
          Advance();
        } else {
          STORM_ASSIGN_OR_RETURN(ast->attribute, ExpectIdentifier());
        }
        return ExpectToken(TokenType::kRParen, "')'");
      }
    }
    if (Cur().IsKeyword("MEDIAN")) {
      Advance();
      ast->task = QueryTask::kQuantile;
      ast->quantile_phi = 0.5;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
      STORM_ASSIGN_OR_RETURN(ast->attribute, ExpectIdentifier());
      return ExpectToken(TokenType::kRParen, "')'");
    }
    if (Cur().IsKeyword("QUANTILE")) {
      Advance();
      ast->task = QueryTask::kQuantile;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
      STORM_ASSIGN_OR_RETURN(double phi, ExpectNumber());
      if (Cur().Is(TokenType::kPercent)) {
        Advance();
        phi /= 100.0;
      }
      if (phi <= 0.0 || phi >= 1.0) {
        return Fail("QUANTILE level must be in (0, 1)");
      }
      ast->quantile_phi = phi;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
      STORM_ASSIGN_OR_RETURN(ast->attribute, ExpectIdentifier());
      return ExpectToken(TokenType::kRParen, "')'");
    }
    if (Cur().IsKeyword("KDE")) {
      Advance();
      ast->task = QueryTask::kKde;
      if (Cur().Is(TokenType::kLParen)) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double w, ExpectNumber());
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
        STORM_ASSIGN_OR_RETURN(double h, ExpectNumber());
        STORM_ASSIGN_OR_RETURN(int64_t wi,
                               CheckedInt(w, 1, 8192, "KDE grid width"));
        STORM_ASSIGN_OR_RETURN(int64_t hi,
                               CheckedInt(h, 1, 8192, "KDE grid height"));
        ast->kde_width = static_cast<int>(wi);
        ast->kde_height = static_cast<int>(hi);
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kRParen, "')'"));
      }
      return Status::OK();
    }
    if (Cur().IsKeyword("TOPTERMS")) {
      Advance();
      ast->task = QueryTask::kTopTerms;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
      STORM_ASSIGN_OR_RETURN(double m, ExpectNumber());
      STORM_ASSIGN_OR_RETURN(int64_t mi,
                             CheckedInt(m, 1, 1'000'000, "TOPTERMS count"));
      ast->top_m = static_cast<uint64_t>(mi);
      if (Cur().Is(TokenType::kComma)) {
        Advance();
        STORM_ASSIGN_OR_RETURN(ast->text_field, ExpectIdentifier());
      }
      return ExpectToken(TokenType::kRParen, "')'");
    }
    if (Cur().IsKeyword("CLUSTER")) {
      Advance();
      ast->task = QueryTask::kCluster;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
      STORM_ASSIGN_OR_RETURN(double k, ExpectNumber());
      STORM_ASSIGN_OR_RETURN(int64_t ki,
                             CheckedInt(k, 1, 65'536, "CLUSTER k"));
      ast->cluster_k = static_cast<int>(ki);
      return ExpectToken(TokenType::kRParen, "')'");
    }
    if (Cur().IsKeyword("TRAJECTORY")) {
      Advance();
      ast->task = QueryTask::kTrajectory;
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
      STORM_ASSIGN_OR_RETURN(ast->object_field, ExpectIdentifier());
      STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
      STORM_ASSIGN_OR_RETURN(double id, ExpectNumber());
      // ±2^53: every integer a double represents exactly.
      STORM_ASSIGN_OR_RETURN(
          ast->object_id,
          CheckedInt(id, -(int64_t{1} << 53), int64_t{1} << 53,
                     "TRAJECTORY object id"));
      return ExpectToken(TokenType::kRParen, "')'");
    }
    return Fail("expected an aggregate or analytical function");
  }

  // A time bound: number (epoch) or 'timestamp string'.
  Result<double> ParseTimeBound() {
    if (Cur().Is(TokenType::kNumber)) {
      double v = Cur().number;
      Advance();
      return v;
    }
    if (Cur().Is(TokenType::kString)) {
      std::optional<double> t = ParseTimestamp(Cur().literal);
      if (!t.has_value()) {
        return Status(Fail("invalid timestamp '" + Cur().literal + "'"));
      }
      Advance();
      return *t;
    }
    return Status(Fail("expected a time bound (number or 'YYYY-MM-DD...')"));
  }

  Status ParseClauses(QueryAst* ast) {
    while (true) {
      if (Cur().IsKeyword("REGION")) {
        Advance();
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
        double c[4];
        for (int i = 0; i < 4; ++i) {
          if (i) STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
          STORM_ASSIGN_OR_RETURN(c[i], ExpectNumber());
        }
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kRParen, "')'"));
        ast->region = Rect2::FromCorners(Point2(c[0], c[1]), Point2(c[2], c[3]));
      } else if (Cur().IsKeyword("TIME")) {
        Advance();
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
        STORM_ASSIGN_OR_RETURN(double t0, ParseTimeBound());
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
        STORM_ASSIGN_OR_RETURN(double t1, ParseTimeBound());
        STORM_RETURN_NOT_OK(ExpectToken(TokenType::kRParen, "')'"));
        if (t1 < t0) std::swap(t0, t1);
        ast->time_range = {t0, t1};
      } else if (Cur().IsKeyword("GROUP")) {
        Advance();
        STORM_RETURN_NOT_OK(Expect("BY"));
        if (ast->task != QueryTask::kAggregate) {
          return Fail("GROUP BY is only valid for aggregates");
        }
        if (Cur().IsKeyword("CELL")) {
          Advance();
          STORM_RETURN_NOT_OK(ExpectToken(TokenType::kLParen, "'('"));
          STORM_ASSIGN_OR_RETURN(double nx, ExpectNumber());
          STORM_RETURN_NOT_OK(ExpectToken(TokenType::kComma, "','"));
          STORM_ASSIGN_OR_RETURN(double ny, ExpectNumber());
          STORM_RETURN_NOT_OK(ExpectToken(TokenType::kRParen, "')'"));
          STORM_ASSIGN_OR_RETURN(int64_t nxi,
                                 CheckedInt(nx, 1, 1'000'000, "CELL grid x"));
          STORM_ASSIGN_OR_RETURN(int64_t nyi,
                                 CheckedInt(ny, 1, 1'000'000, "CELL grid y"));
          if (nxi * nyi > 1'000'000) {
            return Fail("CELL grid must be positive and at most 1e6 cells");
          }
          ast->cell_grid_x = static_cast<int>(nxi);
          ast->cell_grid_y = static_cast<int>(nyi);
        } else {
          STORM_ASSIGN_OR_RETURN(ast->group_by, ExpectIdentifier());
        }
      } else if (Cur().IsKeyword("CONFIDENCE")) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double v, ExpectNumber());
        if (Cur().Is(TokenType::kPercent)) {
          Advance();
          v /= 100.0;
        }
        if (v <= 0.0 || v >= 1.0) return Fail("CONFIDENCE must be in (0,1)");
        ast->confidence = v;
      } else if (Cur().IsKeyword("ERROR")) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double v, ExpectNumber());
        if (Cur().Is(TokenType::kPercent)) {
          Advance();
          ast->target_relative_error = v / 100.0;
        } else {
          ast->target_half_width = v;
        }
      } else if (Cur().IsKeyword("WITHIN")) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double v, ExpectNumber());
        double scale = 1.0;
        if (Cur().IsKeyword("MS") || Cur().IsKeyword("MILLISECONDS")) {
          Advance();
        } else if (Cur().IsKeyword("S") || Cur().IsKeyword("SECONDS") ||
                   Cur().IsKeyword("SEC")) {
          scale = 1000.0;
          Advance();
        }
        if (v <= 0) return Fail("WITHIN budget must be positive");
        ast->time_budget_ms = v * scale;
      } else if (Cur().IsKeyword("DEADLINE")) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double v, ExpectNumber());
        double scale = 1.0;
        if (Cur().IsKeyword("MS") || Cur().IsKeyword("MILLISECONDS")) {
          Advance();
        } else if (Cur().IsKeyword("S") || Cur().IsKeyword("SECONDS") ||
                   Cur().IsKeyword("SEC")) {
          scale = 1000.0;
          Advance();
        }
        if (v <= 0) return Fail("DEADLINE must be positive");
        ast->deadline_ms = v * scale;
      } else if (Cur().IsKeyword("SAMPLES")) {
        Advance();
        STORM_ASSIGN_OR_RETURN(double v, ExpectNumber());
        STORM_ASSIGN_OR_RETURN(
            int64_t limit,
            CheckedInt(v, 1, int64_t{1} << 53, "SAMPLES limit"));
        ast->sample_limit = static_cast<uint64_t>(limit);
      } else if (Cur().IsKeyword("USING")) {
        Advance();
        if (Cur().IsKeyword("RSTREE")) {
          ast->method = SamplerStrategy::kRsTree;
        } else if (Cur().IsKeyword("LSTREE")) {
          ast->method = SamplerStrategy::kLsTree;
        } else if (Cur().IsKeyword("RANDOMPATH")) {
          ast->method = SamplerStrategy::kRandomPath;
        } else if (Cur().IsKeyword("QUERYFIRST") ||
                   Cur().IsKeyword("RANGEREPORT")) {
          ast->method = SamplerStrategy::kQueryFirst;
        } else if (Cur().IsKeyword("SAMPLEFIRST")) {
          ast->method = SamplerStrategy::kSampleFirst;
        } else if (Cur().IsKeyword("DISTRIBUTED")) {
          ast->method = SamplerStrategy::kDistributed;
        } else if (Cur().IsKeyword("STRATIFIED")) {
          ast->method = SamplerStrategy::kStratified;
        } else if (Cur().IsKeyword("AUTO")) {
          ast->method = SamplerStrategy::kAuto;
        } else if (Cur().IsKeyword("NOCACHE")) {
          // USING NOCACHE opts this query out of the shared sample-reservoir
          // cache; it may stand alone or follow a strategy keyword.
          ast->no_cache = true;
        } else {
          return Fail("unknown method in USING clause");
        }
        Advance();
        if (!ast->no_cache && Cur().IsKeyword("NOCACHE")) {
          ast->no_cache = true;
          Advance();
        }
      } else {
        return Status::OK();
      }
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryAst> ParseQuery(std::string_view query) {
  STORM_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeQuery(query));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace storm
