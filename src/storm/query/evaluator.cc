#include "storm/query/evaluator.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "storm/cache/cached_sampler.h"
#include "storm/cache/sample_cache.h"
#include "storm/estimator/stratified.h"
#include "storm/obs/metrics.h"
#include "storm/obs/trace_context.h"
#include "storm/sampling/failover.h"
#include "storm/sampling/stratified.h"
#include "storm/util/thread_pool.h"

namespace storm {

namespace {
/// Backstop for queries with no stopping clause on a sampler that cannot
/// exhaust (with-replacement modes): bounded, documented, generous.
constexpr uint64_t kDefaultSampleCap = 100'000;

/// True when the query can run on the stratified estimator: a plain
/// AVG/SUM/COUNT aggregate with no GROUP BY. Other tasks still accept a
/// USING STRATIFIED hint, but draw from the sampler's uniform facade.
bool StratifiableAggregate(const QueryAst& ast) {
  return ast.task == QueryTask::kAggregate && ast.group_by.empty() &&
         !ast.GroupByCell() &&
         (ast.aggregate == AggregateKind::kAvg ||
          ast.aggregate == AggregateKind::kSum ||
          ast.aggregate == AggregateKind::kCount);
}

/// Resolves the effective reservoir cache for a query, or null when caching
/// is off (knob or USING NOCACHE) or the plan cannot use it. Stratified
/// plans are ineligible: the evaluator downcasts their sampler to the
/// concrete StratifiedSampler<3>, so a decorator cannot sit in between (and
/// stratum-addressed draws are not a uniform stream to cache anyway).
SampleReservoirCache* CacheFor(const SamplingOptions& sampling,
                               const QueryAst& ast,
                               SamplerStrategy strategy) {
  if (!sampling.sample_cache || ast.no_cache) return nullptr;
  if (strategy == SamplerStrategy::kStratified) return nullptr;
  return sampling.cache != nullptr ? sampling.cache
                                   : &SampleReservoirCache::Default();
}
}  // namespace

Result<std::unique_ptr<SpatialSampler<3>>> QueryEvaluator::MakeSampler(
    const QueryAst& ast, QueryResult* result) const {
  QueryProfile::ScopedSpan span = ProfileSpan(profile_, "optimize");
  SamplerStrategy strategy = ast.method;
  result->decision =
      optimizer_.Choose(*table_, ast.QueryBox(), ast.sample_limit);
  if (strategy == SamplerStrategy::kAuto) {
    strategy = result->decision.strategy;
    // Upgrade an auto-chosen plan to stratified execution when the aggregate
    // can use it and the canonical set has fan-out worth exploiting (or the
    // caller asked for it via SamplingOptions::prefer_stratified).
    // auto_stratify=false (set by the server for pre-stratified clients)
    // suppresses the heuristic upgrade; an explicit preference still wins.
    if (StratifiableAggregate(ast) &&
        (sampling_.auto_stratify || sampling_.prefer_stratified) &&
        optimizer_.ShouldStratify(*table_, result->decision,
                                  sampling_.prefer_stratified)) {
      strategy = SamplerStrategy::kStratified;
      result->decision.strategy = strategy;
      result->decision.reason +=
          "; stratified over the canonical set (Neyman allocation)";
    }
  } else {
    result->decision.strategy = strategy;
    result->decision.reason = "USING hint";
  }
  result->strategy = SamplerStrategyToString(strategy);
  if (profile_ != nullptr) profile_->sampler = result->strategy;
  span.SetNote(result->strategy + ": " + result->decision.reason);
  uint64_t seed = table_->rs_tree().size() * 0x9e37 + 17;
  std::unique_ptr<SpatialSampler<3>> sampler;
  // SampleFirst can stall on mis-estimated selective queries (it gives up
  // after its attempt budget); arm a mid-query switch to the RS-tree so the
  // online stream keeps flowing (§3.3 "switch strategy mid-query").
  if (strategy == SamplerStrategy::kSampleFirst &&
      ast.method == SamplerStrategy::kAuto) {
    STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> primary,
                           table_->NewSampler(strategy, seed, sampling_));
    STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> fallback,
                           table_->NewSampler(SamplerStrategy::kRsTree,
                                              seed + 1, sampling_));
    sampler = std::make_unique<FailoverSampler<3>>(std::move(primary),
                                                   std::move(fallback));
  } else {
    STORM_ASSIGN_OR_RETURN(sampler,
                           table_->NewSampler(strategy, seed, sampling_));
  }
  last_cache_ = nullptr;
  if (SampleReservoirCache* cache = CacheFor(sampling_, ast, strategy)) {
    // The cache-drain stage: serve covering cached reservoirs before live
    // draws, publish the served stream back on destruction. The wrapper's
    // RNG (probe thinning + shuffle) derives from the same per-table seed
    // as the sampler, keeping cache-enabled runs seed-deterministic.
    // Bounded queries (explicit stopping rule — the caller asked for an
    // estimate, not an exact scan) may be steered from without-replacement
    // into the with-replacement mode the cache serves; unbounded queries
    // keep their exact-at-exhaustion semantics untouched.
    bool bounded = ast.sample_limit > 0 || ast.target_relative_error > 0 ||
                   ast.target_half_width > 0 || ast.time_budget_ms > 0 ||
                   ast.deadline_ms > 0;
    auto wrapped = std::make_unique<CachedSampler>(
        std::move(sampler), cache, table_->name(), table_->epoch(),
        Rng(seed ^ 0xCAC4E5EEDULL), bounded);
    last_cache_ = wrapped.get();
    result->cache_eligible = true;
    sampler = std::move(wrapped);
  }
  return sampler;
}

namespace {
// Unknown attributes would silently aggregate over nothing (every lookup
// NaN); fail fast with the field name instead.
Status CheckAttribute(const Table& table, const std::string& field) {
  if (table.schema().Find(field) == nullptr) {
    return Status::NotFound("table '" + table.name() + "' has no field '" +
                            field + "'");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel sampling engine (ExecOptions::parallelism > 1)
// ---------------------------------------------------------------------------
//
// N workers each own a sampler (forked RNG stream, private RS-tree buffers)
// and a private estimator shard; the coordinating thread periodically locks
// each shard, merges a snapshot, and drives the usual convergence /
// progress / stopping machinery against the merged CI. Workers never talk
// to each other — the only shared state is the per-shard mutex, a stop
// flag, and a drawn-samples counter.
//
// Statistical contract: the engine forces with-replacement sampling. Merged
// without-replacement streams are NOT a without-replacement sample of the
// union (each worker only excludes its own draws), so the finite-population
// correction would understate the variance. With replacement, each worker's
// draws are iid uniform on P∩Q, the union is too, and the merged shards
// give exactly the single-stream CI. Samplers that cannot serve
// with-replacement (the LS-tree) reject Begin with kNotSupported and the
// query falls back to the sequential loop.

/// What the engine hands back; `shards[0]` holds the final merged state.
template <typename Est>
struct ParallelOutcome {
  bool ran = false;  ///< false: mode unsupported, caller runs sequentially
  std::vector<std::unique_ptr<SpatialSampler<3>>> samplers;
  std::vector<std::unique_ptr<Est>> shards;
};

/// Everything the coordinating loop needs from the evaluator.
struct ParallelEnv {
  int workers = 2;
  StoppingRule rule;
  QueryProfile* profile = nullptr;
  const CancelToken* cancel = nullptr;
  double deadline_ms = 0.0;  ///< effective (ExecOptions ∧ DEADLINE clause)
  const Stopwatch* watch = nullptr;
  const ProgressFn* progress = nullptr;
  /// Per-lock sampling quantum of a worker: long enough to amortize the
  /// worker-shard mutex, short enough that the coordinator's merge never
  /// waits noticeably. Derived from SamplingOptions::batch_size.
  uint64_t batch = 256;
};

/// Est must provide Begin(box, mode), Step(n) -> drawn, Merge(other), and a
/// copy constructor. make_sampler(w) builds worker w's sampler;
/// make_est(sampler, w) its shard (w lets stratum-partitioned estimators
/// claim disjoint strata); ci_of(merged) / samples_of(merged) read the
/// task's CI and sample count (ci_of runs under shard 0's lock because it
/// may consult shard 0's sampler for cardinality).
template <typename Est, typename MakeSamplerFn, typename MakeEstFn,
          typename CiFn, typename SamplesFn>
Result<ParallelOutcome<Est>> RunParallelEngine(
    const Rect3& box, const ParallelEnv& env, MakeSamplerFn make_sampler,
    MakeEstFn make_est, CiFn ci_of, SamplesFn samples_of,
    QueryResult* result) {
  ParallelOutcome<Est> out;
  const int n = env.workers;
  std::vector<std::unique_ptr<std::mutex>> mus;
  for (int w = 0; w < n; ++w) {
    STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                           make_sampler(w));
    std::unique_ptr<Est> est = make_est(sampler.get(), w);
    Status st = est->Begin(box, SamplingMode::kWithReplacement);
    if (st.IsNotSupported()) return out;  // sequential fallback
    STORM_RETURN_NOT_OK(st);
    out.samplers.push_back(std::move(sampler));
    out.shards.push_back(std::move(est));
    mus.push_back(std::make_unique<std::mutex>());
  }

  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("storm_parallel_queries_total",
                 "Queries run on the parallel sampling engine")
      ->Increment();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_drawn{0};
  std::vector<std::atomic<bool>> done(static_cast<size_t>(n));
  for (auto& d : done) d.store(false, std::memory_order_relaxed);
  const uint64_t cap = env.rule.max_samples;  // 0 = uncapped
  const uint64_t quantum = env.batch > 0 ? env.batch : 256;

  ThreadPool& pool = ThreadPool::Shared();
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  // Pool workers inherit the coordinating thread's trace identity so their
  // log lines and flight-recorder events join the query's trace.
  const TraceContext trace = CurrentTraceContext();
  for (int w = 0; w < n; ++w) {
    Counter* worker_samples = reg.GetCounter(
        "storm_parallel_worker_samples_total",
        "Samples drawn by each parallel worker slot",
        {{"worker", std::to_string(w)}});
    Est* est = out.shards[static_cast<size_t>(w)].get();
    std::mutex* mu = mus[static_cast<size_t>(w)].get();
    auto* done_flag = &done[static_cast<size_t>(w)];
    futures.push_back(pool.Submit([&stop, &total_drawn, est, mu, done_flag,
                                   worker_samples, cap, quantum, trace] {
      ScopedTraceContext trace_scope(trace);
      // Every worker contributes at least one batch before honoring the
      // stop flag or the sample cap: on a loaded (or single-core) host one
      // worker can reach the cap before the others are even scheduled, and
      // a stratum-partitioned estimator whose worker never stepped would
      // leave its strata uncovered (infinite half-width) after the merge.
      // The overshoot is bounded by one quantum per worker — the same
      // anytime slack the sequential loop's trailing batch has.
      bool first = true;
      while (true) {
        if (!first) {
          if (stop.load(std::memory_order_acquire)) break;
          if (cap != 0 &&
              total_drawn.load(std::memory_order_relaxed) >= cap) {
            break;
          }
        }
        uint64_t drawn;
        {
          std::lock_guard<std::mutex> lock(*mu);
          drawn = est->Step(quantum);
        }
        first = false;
        if (drawn == 0) break;  // exhausted, or the sampler gave up
        worker_samples->Increment(drawn);
        total_drawn.fetch_add(drawn, std::memory_order_relaxed);
      }
      done_flag->store(true, std::memory_order_release);
    }));
  }

  // Coordinating loop: merge a snapshot of every shard, then run the same
  // convergence / progress / interruption / stopping checks the sequential
  // loop runs once per batch.
  while (true) {
    bool all_done = true;
    for (auto& d : done) {
      all_done = all_done && d.load(std::memory_order_acquire);
    }
    ConfidenceInterval ci;
    uint64_t samples = 0;
    double cardinality = 0.0;
    bool cardinality_exact = false;
    {
      // ci_of may read shard 0's sampler (cardinality), so the snapshot CI
      // is computed while shard 0 is locked.
      std::unique_lock<std::mutex> lock0(*mus[0]);
      Est merged = *out.shards[0];
      for (int w = 1; w < n; ++w) {
        std::lock_guard<std::mutex> lock(*mus[static_cast<size_t>(w)]);
        merged.Merge(*out.shards[static_cast<size_t>(w)]);
      }
      ci = ci_of(merged);
      samples = samples_of(merged);
      CardinalityEstimate card = out.samplers[0]->Cardinality();
      cardinality = card.estimate;
      cardinality_exact = card.exact;
    }
    if (env.profile != nullptr) {
      env.profile->AddConvergencePoint(env.watch->ElapsedMillis(), samples,
                                       ci.estimate, ci.half_width,
                                       cardinality);
    }
    if (env.progress != nullptr && *env.progress) {
      QueryProgress p;
      p.samples = samples;
      p.elapsed_ms = env.watch->ElapsedMillis();
      p.ci = ci;
      p.cardinality_estimate = cardinality;
      p.cardinality_exact = cardinality_exact;
      if (!(*env.progress)(p)) {
        result->cancelled = true;
        break;
      }
    }
    if (env.cancel != nullptr && env.cancel->IsCancelled()) {
      result->cancelled = true;
      break;
    }
    // Anytime semantics match the sequential loop: a deadline cut still
    // returns at least one batch, so don't honor the deadline until the
    // workers have produced something to report (the 500us sleep below
    // yields the CPU to them).
    if (env.deadline_ms > 0.0 &&
        env.watch->ElapsedMillis() >= env.deadline_ms &&
        total_drawn.load(std::memory_order_acquire) > 0) {
      result->deadline_exceeded = true;
      break;
    }
    if (env.rule.ShouldStop(ci, env.watch->ElapsedMillis())) break;
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  stop.store(true, std::memory_order_release);
  for (std::future<void>& f : futures) f.wait();

  // Workers are quiescent; fold every shard into shard 0.
  for (int w = 1; w < n; ++w) {
    out.shards[0]->Merge(*out.shards[static_cast<size_t>(w)]);
  }
  out.ran = true;
  return out;
}
}  // namespace

std::function<Result<std::unique_ptr<SpatialSampler<3>>>(int)>
QueryEvaluator::WorkerSamplerFactory(const QueryAst& ast,
                                     const OptimizerDecision& decision) const {
  SamplerStrategy strategy = decision.strategy;
  if (strategy == SamplerStrategy::kSampleFirst &&
      ast.method == SamplerStrategy::kAuto) {
    // MakeSampler arms a mid-query failover for auto-chosen SampleFirst;
    // that wrapper is single-stream, so parallel workers go straight to the
    // always-flowing RS-tree instead.
    strategy = SamplerStrategy::kRsTree;
  }
  uint64_t seed = table_->rs_tree().size() * 0x9e37 + 17;
  const Table* table = table_;
  // Workers keep the caller's sampling knobs (so every worker's
  // StratifiedSampler derives the identical strata partition) but always
  // take private RS-tree buffers — buffers are not thread-safe to share.
  SamplingOptions opts = sampling_;
  opts.private_buffers = true;
  return [table, strategy, seed, opts](int w) {
    return table->NewSampler(
        strategy, seed + 0x51ab1ULL * static_cast<uint64_t>(w + 1), opts);
  };
}

StoppingRule QueryEvaluator::RuleFor(const QueryAst& ast) const {
  StoppingRule rule;
  rule.target_relative_error = ast.target_relative_error;
  rule.target_half_width = ast.target_half_width;
  rule.max_millis = ast.time_budget_ms;
  rule.max_samples = ast.sample_limit;
  if (rule.target_relative_error == 0 && rule.target_half_width == 0 &&
      rule.max_millis == 0 && rule.max_samples == 0) {
    rule.max_samples = kDefaultSampleCap;
  }
  return rule;
}

bool QueryEvaluator::Interrupted(QueryResult* result) const {
  if (cancel_ != nullptr && cancel_->IsCancelled()) {
    result->cancelled = true;
    return true;
  }
  if (effective_deadline_ms_ > 0.0 &&
      query_watch_.ElapsedMillis() >= effective_deadline_ms_) {
    result->deadline_exceeded = true;
    return true;
  }
  return false;
}

void QueryEvaluator::AnnotateHealth(const SpatialSampler<3>& sampler,
                                    QueryResult* result) const {
  CardinalityEstimate c = sampler.Cardinality();
  result->degraded = c.degraded;
  result->coverage = c.coverage;
  result->cardinality_estimate = c.estimate;
  result->cardinality_exact = c.exact;
  if (last_cache_ != nullptr) {
    result->cache_samples = last_cache_->cached_served();
  }
}

Result<QueryResult> QueryEvaluator::Execute(const QueryAst& ast,
                                            const ExecOptions& options) {
  query_watch_.Restart();
  const ProgressFn& progress = options.progress;
  cancel_ = options.cancel;
  parallelism_ = std::max(1, options.parallelism);
  sampling_ = options.sampling;
  batch_ = std::max<uint64_t>(1, sampling_.batch_size);
  // The tighter of the caller's deadline and the query's own DEADLINE
  // clause wins.
  effective_deadline_ms_ = options.deadline_ms;
  if (ast.deadline_ms > 0.0 &&
      (effective_deadline_ms_ <= 0.0 || ast.deadline_ms < effective_deadline_ms_)) {
    effective_deadline_ms_ = ast.deadline_ms;
  }
  if (profile_ != nullptr) {
    profile_->task = std::string(QueryTaskToString(ast.task));
  }
  if (ast.explain) {
    QueryResult result;
    result.task = ast.task;
    result.explain_only = true;
    result.decision =
        optimizer_.Choose(*table_, ast.QueryBox(), ast.sample_limit);
    if (ast.method != SamplerStrategy::kAuto) {
      result.decision.strategy = ast.method;
      result.decision.reason = "USING hint";
    } else if (StratifiableAggregate(ast) &&
               (sampling_.auto_stratify || sampling_.prefer_stratified) &&
               optimizer_.ShouldStratify(*table_, result.decision,
                                         sampling_.prefer_stratified)) {
      // Mirror MakeSampler's upgrade so EXPLAIN reports the real plan.
      result.decision.strategy = SamplerStrategy::kStratified;
      result.decision.reason +=
          "; stratified over the canonical set (Neyman allocation)";
    }
    result.strategy = SamplerStrategyToString(result.decision.strategy);
    // Cache eligibility travels inside the decision reason (already a wire
    // string), so remote EXPLAINs see it without a protocol change.
    if (!sampling_.sample_cache || ast.no_cache) {
      result.decision.reason += "; sample cache: off";
    } else if (SampleReservoirCache* cache =
                   CacheFor(sampling_, ast, result.decision.strategy)) {
      result.cache_eligible = true;
      result.decision.reason +=
          cache->HasCovering(table_->name(), table_->epoch(), ast.QueryBox())
              ? "; sample cache: eligible, covering reservoir cached"
              : "; sample cache: eligible, no covering reservoir";
    } else {
      result.decision.reason += "; sample cache: ineligible (stratified plan)";
    }
    return result;
  }
  Result<QueryResult> result = Status::InvalidArgument("unknown query task");
  switch (ast.task) {
    case QueryTask::kAggregate:
      result = (ast.group_by.empty() && !ast.GroupByCell())
                   ? RunAggregate(ast, progress)
                   : RunGroupBy(ast, progress);
      break;
    case QueryTask::kQuantile:
      result = RunQuantile(ast, progress);
      break;
    case QueryTask::kKde:
      result = RunKde(ast, progress);
      break;
    case QueryTask::kTopTerms:
      result = RunTopTerms(ast, progress);
      break;
    case QueryTask::kCluster:
      result = RunCluster(ast, progress);
      break;
    case QueryTask::kTrajectory:
      result = RunTrajectory(ast, progress);
      break;
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  MetricLabels task_label{{"task", std::string(QueryTaskToString(ast.task))}};
  if (result.ok()) {
    reg.GetCounter("storm_queries_total", "Queries executed, by task",
                   task_label)
        ->Increment();
    if (result->cancelled) {
      reg.GetCounter("storm_queries_cancelled_total",
                     "Queries stopped by the progress callback", task_label)
          ->Increment();
    }
    if (result->deadline_exceeded) {
      reg.GetCounter("storm_queries_deadline_exceeded_total",
                     "Queries cut short by their hard deadline", task_label)
          ->Increment();
    }
    if (result->degraded) {
      reg.GetCounter("storm_queries_degraded_total",
                     "Queries answered over a partial (degraded) population",
                     task_label)
          ->Increment();
    }
    reg.GetHistogram("storm_query_duration_ms", "End-to-end query wall time",
                     MetricsRegistry::LatencyBucketsMs())
        ->Observe(result->elapsed_ms);
    reg.GetHistogram("storm_query_samples",
                     "Online samples drawn per query",
                     {1, 10, 100, 1000, 10000, 100000, 1000000})
        ->Observe(static_cast<double>(result->samples));
  } else {
    reg.GetCounter("storm_queries_failed_total", "Queries that returned an error",
                   task_label)
        ->Increment();
  }
  return result;
}

Result<QueryResult> QueryEvaluator::RunAggregate(const QueryAst& ast,
                                                 const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  AttributeFn<3> attr;
  if (ast.aggregate != AggregateKind::kCount) {
    STORM_RETURN_NOT_OK(CheckAttribute(*table_, ast.attribute));
    STORM_ASSIGN_OR_RETURN(const std::vector<double>* column,
                           table_->NumericColumn(ast.attribute));
    attr = [column](const RTree<3>::Entry& e) {
      return e.id < column->size() ? (*column)[e.id]
                                   : std::numeric_limits<double>::quiet_NaN();
    };
  }
  StoppingRule rule = RuleFor(ast);
  // The stratified estimator applies when the plan resolved to the
  // stratified sampler AND the aggregate is one it can combine across
  // strata; a STRATIFIED hint on other kinds draws the uniform facade.
  const bool stratified =
      result.decision.strategy == SamplerStrategy::kStratified &&
      StratifiableAggregate(ast);
  if (parallelism_ > 1) {
    prepare.End();
    ParallelEnv env{parallelism_,  rule,          profile_, cancel_,
                    effective_deadline_ms_, &query_watch_, &progress};
    env.batch = batch_ * 4;
    QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
    auto finish_parallel = [&](auto& run) {
      auto& merged = *run.shards[0];
      loop.SetSamples(merged.samples_drawn());
      loop.End();
      AnnotateHealth(*run.samplers[0], &result);
      // Worker samplers draw unwrapped: a cache shared across workers could
      // hand the same reservoir entry to several streams, breaking iid.
      result.cache_eligible = false;
      result.ci = merged.Current();
      result.samples = merged.samples_drawn();
      result.elapsed_ms = query_watch_.ElapsedMillis();
      result.exhausted = merged.Exhausted();
    };
    if (stratified) {
      STORM_ASSIGN_OR_RETURN(
          auto run,
          RunParallelEngine<StratifiedAggregator<3>>(
              ast.QueryBox(), env, WorkerSamplerFactory(ast, result.decision),
              [&](SpatialSampler<3>* s, int w) {
                // Table::NewSampler returns the concrete type for
                // kStratified (never failover-wrapped) so the downcast is
                // safe. Worker w owns strata h with h % workers == w; the
                // partition is identical across workers because stratum
                // derivation is RNG-free.
                return std::make_unique<StratifiedAggregator<3>>(
                    static_cast<StratifiedSampler<3>*>(s), attr,
                    ast.aggregate, ast.confidence, w, parallelism_);
              },
              [](const StratifiedAggregator<3>& e) { return e.Current(); },
              [](const StratifiedAggregator<3>& e) {
                return e.samples_drawn();
              },
              &result));
      if (run.ran) {
        finish_parallel(run);
        return result;
      }
    } else {
      STORM_ASSIGN_OR_RETURN(
          auto run,
          RunParallelEngine<OnlineAggregator<3>>(
              ast.QueryBox(), env, WorkerSamplerFactory(ast, result.decision),
              [&](SpatialSampler<3>* s, int) {
                return std::make_unique<OnlineAggregator<3>>(
                    s, attr, ast.aggregate, ast.confidence);
              },
              [](const OnlineAggregator<3>& e) { return e.Current(); },
              [](const OnlineAggregator<3>& e) { return e.samples_drawn(); },
              &result));
      if (run.ran) {
        finish_parallel(run);
        return result;
      }
    }
    // Sampler without with-replacement support: sequential loop below.
  }
  // One pump loop serves both estimator types (identical interfaces).
  auto pump_and_finish = [&](auto& agg) -> Status {
    STORM_RETURN_NOT_OK(agg.Begin(ast.QueryBox()));
    prepare.End();
    QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
    while (true) {
      uint64_t drawn = agg.Step(batch_);
      ConfidenceInterval ci = agg.Current();
      if (profile_ != nullptr) {
        profile_->AddConvergencePoint(agg.elapsed_millis(),
                                      agg.samples_drawn(), ci.estimate,
                                      ci.half_width,
                                      sampler->Cardinality().estimate);
      }
      if (progress) {
        QueryProgress p;
        p.samples = agg.samples_drawn();
        p.elapsed_ms = agg.elapsed_millis();
        p.ci = ci;
        CardinalityEstimate card = sampler->Cardinality();
        p.cardinality_estimate = card.estimate;
        p.cardinality_exact = card.exact;
        if (!progress(p)) {
          result.cancelled = true;
          break;
        }
      }
      if (Interrupted(&result)) break;
      if (rule.ShouldStop(ci, agg.elapsed_millis()) || drawn == 0) break;
    }
    loop.SetSamples(agg.samples_drawn());
    loop.End();
    AnnotateHealth(*sampler, &result);
    result.ci = agg.Current();
    result.samples = agg.samples_drawn();
    result.elapsed_ms = agg.elapsed_millis();
    result.exhausted = agg.Exhausted();
    return Status::OK();
  };
  if (stratified) {
    StratifiedAggregator<3> agg(
        static_cast<StratifiedSampler<3>*>(sampler.get()), attr,
        ast.aggregate, ast.confidence);
    STORM_RETURN_NOT_OK(pump_and_finish(agg));
    return result;
  }
  OnlineAggregator<3> agg(sampler.get(), std::move(attr), ast.aggregate,
                          ast.confidence);
  STORM_RETURN_NOT_OK(pump_and_finish(agg));
  return result;
}

Result<QueryResult> QueryEvaluator::RunQuantile(const QueryAst& ast,
                                                const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  STORM_RETURN_NOT_OK(CheckAttribute(*table_, ast.attribute));
  STORM_ASSIGN_OR_RETURN(const std::vector<double>* column,
                         table_->NumericColumn(ast.attribute));
  QuantileAttributeFn<3> attr = [column](const RTree<3>::Entry& e) {
    return e.id < column->size() ? (*column)[e.id]
                                 : std::numeric_limits<double>::quiet_NaN();
  };
  StoppingRule rule = RuleFor(ast);
  if (parallelism_ > 1) {
    prepare.End();
    ParallelEnv env{parallelism_,  rule,          profile_, cancel_,
                    effective_deadline_ms_, &query_watch_, &progress};
    env.batch = batch_ * 4;
    QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
    STORM_ASSIGN_OR_RETURN(
        auto run,
        RunParallelEngine<OnlineQuantile<3>>(
            ast.QueryBox(), env, WorkerSamplerFactory(ast, result.decision),
            [&](SpatialSampler<3>* s, int) {
              return std::make_unique<OnlineQuantile<3>>(
                  s, attr, ast.quantile_phi, ast.confidence);
            },
            [](const OnlineQuantile<3>& e) { return e.Current(); },
            [](const OnlineQuantile<3>& e) { return e.samples(); },
            &result));
    if (run.ran) {
      OnlineQuantile<3>& merged = *run.shards[0];
      loop.SetSamples(merged.samples());
      loop.End();
      AnnotateHealth(*run.samplers[0], &result);
      result.cache_eligible = false;  // parallel workers draw unwrapped
      result.ci = merged.Current();
      result.ci_lower = merged.ci_lower();
      result.ci_upper = merged.ci_upper();
      result.samples = merged.samples();
      result.elapsed_ms = query_watch_.ElapsedMillis();
      result.exhausted = merged.Exhausted();
      return result;
    }
  }
  OnlineQuantile<3> quantile(sampler.get(), std::move(attr), ast.quantile_phi,
                             ast.confidence);
  STORM_RETURN_NOT_OK(quantile.Begin(ast.QueryBox()));
  prepare.End();
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t drawn = quantile.Step(batch_);
    ConfidenceInterval ci = quantile.Current();
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(quantile.elapsed_millis(),
                                    quantile.samples(), ci.estimate,
                                    ci.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = quantile.samples();
      p.elapsed_ms = quantile.elapsed_millis();
      p.ci = ci;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(ci, quantile.elapsed_millis()) || drawn == 0) break;
  }
  loop.SetSamples(quantile.samples());
  loop.End();
  AnnotateHealth(*sampler, &result);
  result.ci = quantile.Current();
  result.ci_lower = quantile.ci_lower();
  result.ci_upper = quantile.ci_upper();
  result.samples = quantile.samples();
  result.elapsed_ms = quantile.elapsed_millis();
  result.exhausted = quantile.Exhausted();
  return result;
}

Result<QueryResult> QueryEvaluator::RunGroupBy(const QueryAst& ast,
                                               const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  AttributeFn<3> attr;
  if (ast.aggregate != AggregateKind::kCount) {
    STORM_RETURN_NOT_OK(CheckAttribute(*table_, ast.attribute));
    STORM_ASSIGN_OR_RETURN(const std::vector<double>* column,
                           table_->NumericColumn(ast.attribute));
    attr = [column](const RTree<3>::Entry& e) {
      return e.id < column->size() ? (*column)[e.id]
                                   : std::numeric_limits<double>::quiet_NaN();
    };
  }
  GroupByAggregator<3>::KeyFn key_fn;
  if (ast.GroupByCell()) {
    // Spatial grid key over the query's x/y footprint (or the data bounds
    // when the query is unbounded): key = cell_y * nx + cell_x.
    Rect3 box = ast.QueryBox();
    Rect3 bounds = table_->bounds();
    double x0 = std::isfinite(box.lo()[0]) ? box.lo()[0] : bounds.lo()[0];
    double x1 = std::isfinite(box.hi()[0]) ? box.hi()[0] : bounds.hi()[0];
    double y0 = std::isfinite(box.lo()[1]) ? box.lo()[1] : bounds.lo()[1];
    double y1 = std::isfinite(box.hi()[1]) ? box.hi()[1] : bounds.hi()[1];
    int nx = ast.cell_grid_x, ny = ast.cell_grid_y;
    key_fn = [x0, x1, y0, y1, nx, ny](const RTree<3>::Entry& e) -> int64_t {
      auto cell = [](double v, double lo, double hi, int n) {
        if (hi <= lo) return 0;
        int c = static_cast<int>((v - lo) / (hi - lo) * n);
        return std::clamp(c, 0, n - 1);
      };
      return static_cast<int64_t>(cell(e.point[1], y0, y1, ny)) * nx +
             cell(e.point[0], x0, x1, nx);
    };
  } else {
    STORM_RETURN_NOT_OK(CheckAttribute(*table_, ast.group_by));
    STORM_ASSIGN_OR_RETURN(const std::vector<double>* key_column,
                           table_->NumericColumn(ast.group_by));
    key_fn = [key_column](const RTree<3>::Entry& e) -> int64_t {
      double k = e.id < key_column->size()
                     ? (*key_column)[e.id]
                     : std::numeric_limits<double>::quiet_NaN();
      return std::isnan(k) ? std::numeric_limits<int64_t>::min()
                           : static_cast<int64_t>(std::llround(k));
    };
  }
  StoppingRule rule = RuleFor(ast);
  // Group-by stopping uses the widest per-group CI.
  auto worst_group_ci = [](const GroupByAggregator<3>& agg) {
    ConfidenceInterval worst;
    worst.samples = agg.total_samples();
    double worst_hw = 0.0;
    for (const auto& g : agg.Current()) {
      if (g.ci.half_width > worst_hw) {
        worst_hw = g.ci.half_width;
        worst = g.ci;
        worst.samples = agg.total_samples();
      }
    }
    return worst;
  };
  if (parallelism_ > 1) {
    prepare.End();
    ParallelEnv env{parallelism_,  rule,          profile_, cancel_,
                    effective_deadline_ms_, &query_watch_, &progress};
    env.batch = batch_ * 4;
    QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
    STORM_ASSIGN_OR_RETURN(
        auto run,
        RunParallelEngine<GroupByAggregator<3>>(
            ast.QueryBox(), env, WorkerSamplerFactory(ast, result.decision),
            [&](SpatialSampler<3>* s, int) {
              return std::make_unique<GroupByAggregator<3>>(
                  s, key_fn, attr, ast.aggregate, ast.confidence);
            },
            worst_group_ci,
            [](const GroupByAggregator<3>& e) { return e.total_samples(); },
            &result));
    if (run.ran) {
      GroupByAggregator<3>& merged = *run.shards[0];
      loop.SetSamples(merged.total_samples());
      loop.End();
      AnnotateHealth(*run.samplers[0], &result);
      result.cache_eligible = false;  // parallel workers draw unwrapped
      for (const auto& g : merged.Current()) {
        // The NaN-key group holds records lacking the group attribute.
        if (g.key == std::numeric_limits<int64_t>::min()) continue;
        result.groups.push_back(GroupRow{g.key, g.ci, g.group_size, g.samples});
      }
      result.samples = merged.total_samples();
      result.elapsed_ms = query_watch_.ElapsedMillis();
      result.exhausted = merged.Exhausted();
      return result;
    }
  }
  GroupByAggregator<3> agg(sampler.get(), key_fn, std::move(attr), ast.aggregate,
                           ast.confidence);
  STORM_RETURN_NOT_OK(agg.Begin(ast.QueryBox()));
  prepare.End();
  Stopwatch watch;
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t drawn = agg.Step(batch_);
    ConfidenceInterval worst = worst_group_ci(agg);
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(watch.ElapsedMillis(), agg.total_samples(),
                                    worst.estimate, worst.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = agg.total_samples();
      p.elapsed_ms = watch.ElapsedMillis();
      p.ci = worst;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(worst, watch.ElapsedMillis()) || drawn == 0) break;
  }
  loop.SetSamples(agg.total_samples());
  loop.End();
  AnnotateHealth(*sampler, &result);
  for (const auto& g : agg.Current()) {
    // The NaN-key group holds records lacking the group attribute.
    if (g.key == std::numeric_limits<int64_t>::min()) continue;
    result.groups.push_back(GroupRow{g.key, g.ci, g.group_size, g.samples});
  }
  result.samples = agg.total_samples();
  result.elapsed_ms = watch.ElapsedMillis();
  result.exhausted = agg.Exhausted();
  return result;
}

Result<QueryResult> QueryEvaluator::RunKde(const QueryAst& ast,
                                           const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  Rect2 region;
  if (ast.region.has_value()) {
    region = *ast.region;
  } else {
    Rect3 b = table_->bounds();
    region = Rect2(Point2(b.lo()[0], b.lo()[1]), Point2(b.hi()[0], b.hi()[1]));
  }
  KdeOptions options;
  options.grid_width = ast.kde_width;
  options.grid_height = ast.kde_height;
  options.confidence = ast.confidence;
  OnlineKde<3> kde(sampler.get(), region, options);
  STORM_RETURN_NOT_OK(kde.Begin(ast.QueryBox()));
  prepare.End();
  StoppingRule rule = RuleFor(ast);
  Stopwatch watch;
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t drawn = kde.Step(batch_);
    ConfidenceInterval quality;
    quality.samples = kde.samples();
    quality.confidence = ast.confidence;
    quality.half_width = kde.MaxHalfWidth();
    // Anchor for ERROR% targets: the map's mean density, so "ERROR 5%"
    // means the worst cell's CI is within 5% of the average density level.
    if (kde.samples() > 0) {
      std::vector<double> map = kde.DensityMap();
      double mean = 0;
      for (double d : map) mean += d;
      quality.estimate = map.empty() ? 0.0 : mean / static_cast<double>(map.size());
    }
    quality.exact = kde.Exhausted();
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(watch.ElapsedMillis(), kde.samples(),
                                    quality.estimate, quality.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = kde.samples();
      p.elapsed_ms = watch.ElapsedMillis();
      p.ci = quality;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(quality, watch.ElapsedMillis()) || drawn == 0) break;
  }
  loop.SetSamples(kde.samples());
  loop.End();
  AnnotateHealth(*sampler, &result);
  result.kde_map = kde.DensityMap();
  result.kde_width = ast.kde_width;
  result.kde_height = ast.kde_height;
  result.kde_max_half_width = kde.MaxHalfWidth();
  result.samples = kde.samples();
  result.elapsed_ms = watch.ElapsedMillis();
  result.exhausted = kde.Exhausted();
  return result;
}

Result<QueryResult> QueryEvaluator::RunTopTerms(const QueryAst& ast,
                                                const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  // Document text goes through the record store page by page: the sampled
  // id is fetched and tokenized on demand.
  const Table* table = table_;
  std::string field = ast.text_field;
  // Cache the fetched strings per query: sampled ids may repeat.
  auto cache = std::make_shared<std::unordered_map<RecordId, std::string>>();
  auto text_of = [table, field, cache](RecordId id) -> std::string_view {
    auto it = cache->find(id);
    if (it == cache->end()) {
      Result<std::string> text = table->TextOf(id, field);
      it = cache->emplace(id, text.ok() ? *text : std::string()).first;
    }
    return it->second;
  };
  OnlineTermFrequency<3> freq(sampler.get(), text_of, ast.confidence);
  STORM_RETURN_NOT_OK(freq.Begin(ast.QueryBox()));
  prepare.End();
  StoppingRule rule = RuleFor(ast);
  Stopwatch watch;
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t drawn = freq.Step(batch_);
    ConfidenceInterval quality;
    quality.samples = freq.documents();
    std::vector<TermEstimate> top = freq.TopTerms(1);
    if (!top.empty()) quality = top[0].frequency;
    quality.exact = freq.Exhausted();
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(watch.ElapsedMillis(), freq.documents(),
                                    quality.estimate, quality.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = freq.documents();
      p.elapsed_ms = watch.ElapsedMillis();
      p.ci = quality;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(quality, watch.ElapsedMillis()) || drawn == 0) break;
  }
  loop.SetSamples(freq.documents());
  loop.End();
  AnnotateHealth(*sampler, &result);
  result.terms = freq.TopTerms(ast.top_m);
  result.samples = freq.documents();
  result.elapsed_ms = watch.ElapsedMillis();
  result.exhausted = freq.Exhausted();
  return result;
}

Result<QueryResult> QueryEvaluator::RunCluster(const QueryAst& ast,
                                               const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  KMeansOptions options;
  options.k = ast.cluster_k;
  OnlineKMeans<3> km(sampler.get(), options, Rng(table_->rs_tree().size() + 7));
  STORM_RETURN_NOT_OK(km.Begin(ast.QueryBox()));
  prepare.End();
  StoppingRule rule = RuleFor(ast);
  Stopwatch watch;
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t drawn = km.Step(256);
    ConfidenceInterval quality;
    quality.samples = km.samples();
    quality.estimate = km.Current().inertia;
    quality.half_width = km.LastCenterDrift();
    quality.exact = km.Exhausted();
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(watch.ElapsedMillis(), km.samples(),
                                    quality.estimate, quality.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = km.samples();
      p.elapsed_ms = watch.ElapsedMillis();
      p.ci = quality;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(quality, watch.ElapsedMillis()) || drawn == 0) break;
  }
  loop.SetSamples(km.samples());
  loop.End();
  AnnotateHealth(*sampler, &result);
  result.centers = km.Current().centers;
  result.inertia = km.Current().inertia;
  result.samples = km.samples();
  result.elapsed_ms = watch.ElapsedMillis();
  result.exhausted = km.Exhausted();
  return result;
}

Result<QueryResult> QueryEvaluator::RunTrajectory(const QueryAst& ast,
                                                  const ProgressFn& progress) {
  QueryResult result;
  result.task = ast.task;
  QueryProfile::ScopedSpan prepare = ProfileSpan(profile_, "prepare");
  STORM_ASSIGN_OR_RETURN(std::unique_ptr<SpatialSampler<3>> sampler,
                         MakeSampler(ast, &result));
  STORM_RETURN_NOT_OK(CheckAttribute(*table_, ast.object_field));
  STORM_ASSIGN_OR_RETURN(const std::vector<double>* object_column,
                         table_->NumericColumn(ast.object_field));
  int64_t want = ast.object_id;
  auto filter = [object_column, want](const RTree<3>::Entry& e) {
    if (e.id >= object_column->size()) return false;
    double v = (*object_column)[e.id];
    return !std::isnan(v) && static_cast<int64_t>(std::llround(v)) == want;
  };
  OnlineTrajectory<3> traj(sampler.get(), filter);
  STORM_RETURN_NOT_OK(traj.Begin(ast.QueryBox()));
  prepare.End();
  StoppingRule rule = RuleFor(ast);
  Stopwatch watch;
  QueryProfile::ScopedSpan loop = ProfileSpan(profile_, "sample_loop");
  while (true) {
    uint64_t added = traj.Step(batch_);
    ConfidenceInterval quality;
    quality.samples = traj.samples_drawn();
    quality.estimate = static_cast<double>(traj.Current().size());
    quality.half_width = std::numeric_limits<double>::infinity();
    quality.exact = traj.Exhausted();
    if (profile_ != nullptr) {
      profile_->AddConvergencePoint(watch.ElapsedMillis(), traj.samples_drawn(),
                                    quality.estimate, quality.half_width,
                                    sampler->Cardinality().estimate);
    }
    if (progress) {
      QueryProgress p;
      p.samples = traj.samples_drawn();
      p.elapsed_ms = watch.ElapsedMillis();
      p.ci = quality;
      CardinalityEstimate card = sampler->Cardinality();
      p.cardinality_estimate = card.estimate;
      p.cardinality_exact = card.exact;
      if (!progress(p)) {
        result.cancelled = true;
        break;
      }
    }
    if (Interrupted(&result)) break;
    if (rule.ShouldStop(quality, watch.ElapsedMillis()) ||
        (added == 0 && traj.Exhausted())) {
      break;
    }
    if (added == 0 && quality.samples >= kDefaultSampleCap) break;
  }
  loop.SetSamples(traj.samples_drawn());
  loop.End();
  AnnotateHealth(*sampler, &result);
  result.trajectory = traj.Current().Polyline();
  result.samples = traj.samples_drawn();
  result.elapsed_ms = watch.ElapsedMillis();
  result.exhausted = traj.Exhausted();
  return result;
}

}  // namespace storm
