// Session: STORM's top-level user-facing API — a catalog of tables, data
// import through the connector, query execution, and updates. This is what
// the query interface of Figure 1 talks to.
//
// Per-call execution knobs (deadline, cancellation, parallelism, progress)
// are consolidated in storm::ExecOptions (storm/query/exec_options.h).

#ifndef STORM_QUERY_SESSION_H_
#define STORM_QUERY_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storm/connector/csv.h"
#include "storm/connector/jsonl.h"
#include "storm/query/evaluator.h"
#include "storm/query/exec_options.h"
#include "storm/query/parser.h"
#include "storm/query/update_manager.h"

namespace storm {

class Session {
 public:
  /// Registers documents as a table (import + index build).
  Status CreateTable(const std::string& name, const std::vector<Value>& docs,
                     const ImportOptions& import_options = {},
                     const TableConfig& config = {});

  /// Imports a file by extension (.csv/.tsv/.jsonl/.ndjson) and registers
  /// it as a table — the "data import" component of the demo.
  Status ImportFile(const std::string& name, const std::string& path,
                    const ImportOptions& import_options = {},
                    const TableConfig& config = {});

  /// Exports a table's live documents as JSON-lines; round-trips through
  /// ImportFile (the storage engine's snapshot format is its interchange
  /// format — indexes are rebuilt on load).
  Status SaveTable(const std::string& name, const std::string& path);

  /// Drops a table.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const { return tables_.contains(name); }
  Result<Table*> GetTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Parses and runs a query in the STORM query language. Every per-call
  /// knob — deadline, cancellation, parallel workers, progress callback,
  /// profiling — rides in `options`.
  Result<QueryResult> Execute(const std::string& query,
                              const ExecOptions& options = {});

  /// Runs an already-parsed query.
  Result<QueryResult> ExecuteAst(const QueryAst& ast,
                                 const ExecOptions& options = {});

  /// Update entry point for a table.
  Result<UpdateManager*> Updates(const std::string& table);

  // --- Durability controls (tables created with TableConfig::durable) ---

  /// Checkpoints a durable table (flush + WAL truncation).
  Status Checkpoint(const std::string& table);

  /// Simulates power loss on a durable table: drops the in-memory table
  /// (its buffer pool with it), crashes the shared disk (discarding every
  /// unsynced page), and stashes the disk so Recover() can rebuild from it.
  Status SimulateCrash(const std::string& table);

  /// Rebuilds a table from its crashed disk (after SimulateCrash) and
  /// re-registers it under its recovered name.
  Status Recover(const std::string& table);

  QueryOptimizer* optimizer() { return &optimizer_; }

 private:
  /// Shared execution path: holds the table's read latch for the duration of
  /// the query so concurrent UpdateManager writers serialize against it.
  Result<QueryResult> ExecuteAstInternal(const QueryAst& ast,
                                         std::shared_ptr<QueryProfile> profile,
                                         const ExecOptions& options);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<UpdateManager>> updaters_;
  /// Disks of crashed tables awaiting Recover().
  std::map<std::string, std::shared_ptr<BlockManager>> crashed_disks_;
  QueryOptimizer optimizer_;
};

}  // namespace storm

#endif  // STORM_QUERY_SESSION_H_
