// QueryOptimizer: decides which sampling strategy the sampler module should
// use for a given query (§3.2 "a set of basic query optimization rules").
//
// The decision follows the cost analysis of §3.1:
//   SampleFirst  costs O(k·N/q)      — only viable when q/N is large;
//   QueryFirst   costs O(r(N) + q)   — best when the caller will consume a
//                                      constant fraction of P∩Q anyway, or
//                                      when q is tiny;
//   RandomPath   costs O(r(N) + k·log N) CPU but Ω(k) random page reads —
//                                      fine for memory-resident tables;
//   RS-tree      amortizes the walks via buffers — the default;
//   LS-tree      best for scan-friendly storage — chosen when configured.
//
// Selectivity is estimated for free from the LS-tree's top level (a range
// count over a few hundred entries) or, lacking one, from the RS-tree's
// root canonical bounds.

#ifndef STORM_QUERY_OPTIMIZER_H_
#define STORM_QUERY_OPTIMIZER_H_

#include <string>

#include "storm/query/table.h"

namespace storm {

struct OptimizerDecision {
  SamplerStrategy strategy = SamplerStrategy::kRsTree;
  /// Estimated q (|P ∩ Q|).
  double estimated_cardinality = 0.0;
  /// Estimated q / N.
  double estimated_selectivity = 0.0;
  /// Human-readable rule trace.
  std::string reason;
};

/// Tunable rule thresholds, calibrated by bench/ablation_optimizer.
struct OptimizerCostModel {
  /// SampleFirst wins above this selectivity.
  double sample_first_min_selectivity = 0.25;
  /// QueryFirst wins when expected k exceeds this fraction of q̂.
  double query_first_min_fraction = 0.5;
  /// Tables at most this large are treated as memory-resident, where
  /// RandomPath's random access is harmless.
  uint64_t memory_resident_entries = 8192;
  /// Expected sample budget when the query does not say (k is unknown by
  /// definition; this is only a planning prior).
  uint64_t default_expected_k = 1024;
  /// Stratified execution needs enough qualifying records to fill several
  /// strata; below this q̂ the partition overhead cannot pay off.
  double stratified_min_cardinality = 4096.0;
  /// Stratified execution needs canonical-set fan-out: the RS-tree root
  /// must have at least this many children, or there is nothing to
  /// partition the query across.
  size_t stratified_min_fanout = 4;
};

class QueryOptimizer {
 public:
  explicit QueryOptimizer(OptimizerCostModel model = {}) : model_(model) {}

  /// Picks a strategy for the query box. `expected_k` of 0 uses the model
  /// prior. Honors nothing about ast.method — callers short-circuit
  /// explicit USING hints themselves.
  OptimizerDecision Choose(const Table& table, const Rect3& query,
                           uint64_t expected_k = 0) const;

  /// Cheap cardinality estimate (never touches more than the LS top level
  /// or the R-tree root region).
  double EstimateCardinality(const Table& table, const Rect3& query) const;

  /// Whether an RS-tree decision should be upgraded to stratified
  /// execution: enough estimated cardinality and root fan-out for the
  /// canonical-set partition to pay off. `prefer` (the SamplingOptions /
  /// wire flag) waives the thresholds — eligibility then only requires a
  /// non-trivial tree. The caller has already checked the task/aggregate
  /// is stratifiable (AVG/SUM/COUNT over a single-node table).
  bool ShouldStratify(const Table& table, const OptimizerDecision& decision,
                      bool prefer = false) const;

  const OptimizerCostModel& model() const { return model_; }

 private:
  OptimizerCostModel model_;
};

}  // namespace storm

#endif  // STORM_QUERY_OPTIMIZER_H_
