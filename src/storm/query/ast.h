// AST for STORM's keyword-based query language (§3.2).
//
// The language covers the demo's built-in analytics:
//
//   SELECT AVG(temperature) FROM weather
//     REGION(-112.2, 40.4, -111.7, 40.9)
//     TIME('2014-01-05', '2014-03-05')
//     GROUP BY station
//     CONFIDENCE 95% ERROR 2% WITHIN 1500 MS SAMPLES 10000
//     USING RSTREE
//
//   SELECT COUNT(*) FROM tweets REGION(...) TIME(...)
//   SELECT KDE(64, 64) FROM tweets REGION(...)
//   SELECT TOPTERMS(10, text) FROM tweets REGION(...) TIME(...)
//   SELECT CLUSTER(8) FROM tweets REGION(...)
//   SELECT TRAJECTORY(user, 42) FROM tweets TIME(...)
//
// REGION/TIME clauses define the spatio-temporal range; CONFIDENCE/ERROR/
// WITHIN/SAMPLES set the stopping rule; USING overrides the optimizer.

#ifndef STORM_QUERY_AST_H_
#define STORM_QUERY_AST_H_

#include <cstdint>
#include <optional>
#include <string>

#include "storm/estimator/aggregate.h"
#include "storm/geo/rect.h"

namespace storm {

/// Sampling strategy selector (USING clause / optimizer output).
enum class SamplerStrategy {
  kAuto,
  kQueryFirst,
  kSampleFirst,
  kRandomPath,
  kLsTree,
  kRsTree,
  /// Merged sampling over the table's shards; only valid for tables built
  /// with TableConfig::num_shards > 1.
  kDistributed,
  /// Stratified sampling over the RS-tree's canonical node set with Neyman
  /// budget allocation (USING STRATIFIED); aggregate AVG/SUM/COUNT only —
  /// other tasks fall back to the uniform facade stream.
  kStratified,
};

std::string_view SamplerStrategyToString(SamplerStrategy s);

/// Analytical task selected by the SELECT head.
enum class QueryTask {
  kAggregate,   ///< AVG/SUM/COUNT/... over an attribute
  kQuantile,    ///< MEDIAN(attr) / QUANTILE(phi, attr)
  kKde,         ///< density map
  kTopTerms,    ///< short-text term frequencies
  kCluster,     ///< k-means centers
  kTrajectory,  ///< per-object path reconstruction
};

std::string_view QueryTaskToString(QueryTask t);

/// Parsed query.
struct QueryAst {
  QueryTask task = QueryTask::kAggregate;
  std::string table;

  // kAggregate
  AggregateKind aggregate = AggregateKind::kAvg;
  std::string attribute;  ///< "*" for COUNT(*)
  std::string group_by;   ///< empty when not grouped
  /// GROUP BY CELL(nx, ny): group by spatial grid cell over the query
  /// region (choropleth-style aggregates). Overrides `group_by`. Group keys
  /// are cell_y * nx + cell_x.
  int cell_grid_x = 0;
  int cell_grid_y = 0;
  bool GroupByCell() const { return cell_grid_x > 0 && cell_grid_y > 0; }

  // kQuantile
  double quantile_phi = 0.5;

  // kKde
  int kde_width = 64;
  int kde_height = 64;

  // kTopTerms
  uint64_t top_m = 10;
  std::string text_field = "text";

  // kCluster
  int cluster_k = 8;

  // kTrajectory
  std::string object_field;  ///< e.g. "user"
  int64_t object_id = 0;

  // Range.
  std::optional<Rect2> region;
  std::optional<std::pair<double, double>> time_range;  ///< epoch seconds

  // Stopping rule.
  double confidence = 0.95;
  double target_relative_error = 0.0;
  double target_half_width = 0.0;
  double time_budget_ms = 0.0;
  uint64_t sample_limit = 0;

  /// DEADLINE clause: hard wall-clock ceiling, distinct from WITHIN. WITHIN
  /// is a stopping rule (the query ends normally at its budget); a deadline
  /// marks the result deadline_exceeded so the caller knows the answer was
  /// cut short rather than converged.
  double deadline_ms = 0.0;

  SamplerStrategy method = SamplerStrategy::kAuto;

  /// USING NOCACHE hint: never serve this query from (or publish it to) the
  /// shared sample-reservoir cache (docs/CACHING.md).
  bool no_cache = false;

  /// EXPLAIN prefix: plan only (optimizer decision + selectivity estimate),
  /// draw no samples.
  bool explain = false;

  /// The 3-d query box (x, y, t); unbounded axes where clauses are absent.
  Rect3 QueryBox() const {
    Rect3 everything = Rect3::Everything();
    Point3 lo = everything.lo(), hi = everything.hi();
    if (region.has_value()) {
      lo[0] = region->lo()[0];
      lo[1] = region->lo()[1];
      hi[0] = region->hi()[0];
      hi[1] = region->hi()[1];
    }
    if (time_range.has_value()) {
      lo[2] = time_range->first;
      hi[2] = time_range->second;
    }
    return Rect3(lo, hi);
  }
};

}  // namespace storm

#endif  // STORM_QUERY_AST_H_
