#include "storm/query/update_manager.h"

#include <chrono>

#include "storm/obs/metrics.h"

namespace storm {

namespace {

struct UpdateMetrics {
  Counter* inserts;
  Counter* deletes;
  Histogram* batch_ms;
  Gauge* pending_depth;
};

const UpdateMetrics& Metrics() {
  static const UpdateMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Default();
    UpdateMetrics u;
    u.inserts = reg.GetCounter("storm_update_inserts_total",
                               "Documents inserted through UpdateManager");
    u.deletes = reg.GetCounter("storm_update_deletes_total",
                               "Records deleted through UpdateManager");
    u.batch_ms = reg.GetHistogram("storm_update_batch_ms",
                                  "Wall time to apply one insert batch",
                                  MetricsRegistry::LatencyBucketsMs());
    u.pending_depth = reg.GetGauge(
        "storm_update_pending_batch_depth",
        "Documents of the in-flight insert batch not yet applied");
    return u;
  }();
  return m;
}

}  // namespace

Result<RecordId> UpdateManager::Insert(const Value& doc) {
  Result<RecordId> id = table_->Insert(doc);
  if (id.ok()) {
    ++inserts_;
    Metrics().inserts->Increment();
  }
  return id;
}

Result<std::vector<RecordId>> UpdateManager::InsertBatch(
    const std::vector<Value>& docs) {
  const UpdateMetrics& m = Metrics();
  auto start = std::chrono::steady_clock::now();
  m.pending_depth->Set(static_cast<double>(docs.size()));
  std::vector<RecordId> ids;
  ids.reserve(docs.size());
  for (const Value& doc : docs) {
    Result<RecordId> id = table_->Insert(doc);
    if (!id.ok()) {
      m.pending_depth->Set(0.0);
      return Status(id.status().code(),
                    "after " + std::to_string(ids.size()) + " inserts: " +
                        id.status().message());
    }
    ids.push_back(*id);
    ++inserts_;
    m.inserts->Increment();
    m.pending_depth->Set(static_cast<double>(docs.size() - ids.size()));
  }
  m.batch_ms->Observe(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  return ids;
}

Status UpdateManager::Delete(RecordId id) {
  Status st = table_->Delete(id);
  if (st.ok()) {
    ++deletes_;
    Metrics().deletes->Increment();
  }
  return st;
}

}  // namespace storm
