#include "storm/query/update_manager.h"

namespace storm {

Result<RecordId> UpdateManager::Insert(const Value& doc) {
  Result<RecordId> id = table_->Insert(doc);
  if (id.ok()) ++inserts_;
  return id;
}

Result<std::vector<RecordId>> UpdateManager::InsertBatch(
    const std::vector<Value>& docs) {
  std::vector<RecordId> ids;
  ids.reserve(docs.size());
  for (const Value& doc : docs) {
    Result<RecordId> id = table_->Insert(doc);
    if (!id.ok()) {
      return Status(id.status().code(),
                    "after " + std::to_string(ids.size()) + " inserts: " +
                        id.status().message());
    }
    ids.push_back(*id);
    ++inserts_;
  }
  return ids;
}

Status UpdateManager::Delete(RecordId id) {
  Status st = table_->Delete(id);
  if (st.ok()) ++deletes_;
  return st;
}

}  // namespace storm
