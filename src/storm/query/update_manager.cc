#include "storm/query/update_manager.h"

#include <chrono>

#include "storm/obs/metrics.h"

namespace storm {

namespace {

struct UpdateMetrics {
  Counter* inserts;
  Counter* deletes;
  Histogram* batch_ms;
  Gauge* pending_depth;
};

const UpdateMetrics& Metrics() {
  static const UpdateMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Default();
    UpdateMetrics u;
    u.inserts = reg.GetCounter("storm_update_inserts_total",
                               "Documents inserted through UpdateManager");
    u.deletes = reg.GetCounter("storm_update_deletes_total",
                               "Records deleted through UpdateManager");
    u.batch_ms = reg.GetHistogram("storm_update_batch_ms",
                                  "Wall time to apply one insert batch",
                                  MetricsRegistry::LatencyBucketsMs());
    u.pending_depth = reg.GetGauge(
        "storm_update_pending_batch_depth",
        "Documents of the in-flight insert batch not yet applied");
    return u;
  }();
  return m;
}

}  // namespace

Result<RecordId> UpdateManager::Insert(const Value& doc) {
  Result<RecordId> id = table_->Insert(doc);
  if (id.ok()) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    Metrics().inserts->Increment();
  }
  return id;
}

BatchInsertResult UpdateManager::InsertBatch(const std::vector<Value>& docs) {
  const UpdateMetrics& m = Metrics();
  auto start = std::chrono::steady_clock::now();
  m.pending_depth->Set(static_cast<double>(docs.size()));
  BatchInsertResult result = table_->InsertBatch(docs);
  inserts_.fetch_add(result.ids.size(), std::memory_order_relaxed);
  m.inserts->Increment(result.ids.size());
  m.pending_depth->Set(0.0);
  m.batch_ms->Observe(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  return result;
}

Status UpdateManager::Delete(RecordId id) {
  Status st = table_->Delete(id);
  if (st.ok()) {
    deletes_.fetch_add(1, std::memory_order_relaxed);
    Metrics().deletes->Increment();
  }
  return st;
}

}  // namespace storm
