// ExecOptions: every per-call execution knob in one struct.
//
// Earlier releases scattered these over positional parameters (a progress
// callback argument, a deadline/cancel options struct, setter calls on the
// evaluator). They are now consolidated here with builder-style setters:
//
//   session.Execute("SELECT AVG(speed) FROM taxi ...",
//                   ExecOptions()
//                       .WithParallelism(8)
//                       .WithDeadlineMs(250)
//                       .WithProgress(render));
//
// The pre-0.4 positional-progress Session::Execute(query, progress,
// options) overloads have been removed after their release of grace;
// docs/API.md keeps the migration table. ExecOptions is also the shape the
// serving layer speaks: RemoteClient forwards parallelism, deadline_ms,
// cancel, and progress across the wire (server/remote_client.h).

#ifndef STORM_QUERY_EXEC_OPTIONS_H_
#define STORM_QUERY_EXEC_OPTIONS_H_

#include <functional>

#include "storm/estimator/confidence.h"
#include "storm/obs/trace_context.h"
#include "storm/sampling/options.h"
#include "storm/util/cancel.h"

namespace storm {

/// Lightweight per-batch progress snapshot.
struct QueryProgress {
  uint64_t samples = 0;
  double elapsed_ms = 0.0;
  /// Meaning depends on the task: aggregate CI; max cell CI (KDE);
  /// top-1 term frequency CI (TOPTERMS); center drift (CLUSTER);
  /// fixes collected (TRAJECTORY, as estimate).
  ConfidenceInterval ci;
  /// Sampler's running estimate of q = |P ∩ Q|, the number of qualifying
  /// records (0 until known). A networked coordinator uses it to weight
  /// this stream against disjoint shard partitions.
  double cardinality_estimate = 0.0;
  /// True once cardinality_estimate is the exact count, not an estimate.
  bool cardinality_exact = false;
};

/// Return false to cancel the running query.
using ProgressFn = std::function<bool(const QueryProgress&)>;

/// Per-call execution controls for Session::Execute / ExecuteAst.
struct ExecOptions {
  /// Worker threads sampling concurrently. 1 (the default) runs the
  /// classic sequential loop — bit-for-bit deterministic for a fixed
  /// table. Values > 1 run aggregate/group-by/quantile queries on the
  /// shared thread pool: each worker owns a forked RNG stream and a
  /// private estimator shard, merged into one CI (docs/API.md explains
  /// the determinism caveat). Tasks without a mergeable estimator run
  /// sequentially regardless.
  int parallelism = 1;

  /// Hard wall-clock ceiling in ms (0 = none). Queries that hit it return
  /// the best-so-far estimate with QueryResult::deadline_exceeded set. The
  /// query's own DEADLINE clause can only tighten this.
  double deadline_ms = 0.0;

  /// Cooperative cancellation, polled between sample batches. Must outlive
  /// the call. Optional.
  const CancelToken* cancel = nullptr;

  /// Runs once per sample batch (from the coordinating thread, never a
  /// worker); returning false cancels the query.
  ProgressFn progress;

  /// Collect a per-query trace profile (spans, IO deltas, convergence
  /// trajectory) into QueryResult::profile. On by default; turn off to
  /// shave the bookkeeping on hot paths.
  bool profile = true;

  /// Trace identity for this call. When invalid (the default) the session
  /// mints a fresh unsampled context, so every query still has an id for
  /// log/flight-recorder correlation. Callers propagating a distributed
  /// trace (the server adopting a client's context) set it explicitly.
  TraceContext trace;

  /// Per-query sampling knobs (batch size, stratification, cluster retry),
  /// threaded evaluator → Table::NewSampler → every sampler strategy. See
  /// storm/sampling/options.h.
  SamplingOptions sampling;

  // Builder-style setters (each returns *this so calls chain).
  ExecOptions& WithParallelism(int workers) {
    parallelism = workers;
    return *this;
  }
  ExecOptions& WithDeadlineMs(double ms) {
    deadline_ms = ms;
    return *this;
  }
  ExecOptions& WithCancel(const CancelToken* token) {
    cancel = token;
    return *this;
  }
  ExecOptions& WithProgress(ProgressFn fn) {
    progress = std::move(fn);
    return *this;
  }
  ExecOptions& WithProfile(bool enabled) {
    profile = enabled;
    return *this;
  }
  ExecOptions& WithTrace(const TraceContext& ctx) {
    trace = ctx;
    return *this;
  }
  ExecOptions& WithSampling(const SamplingOptions& opts) {
    sampling = opts;
    return *this;
  }
};

}  // namespace storm

#endif  // STORM_QUERY_EXEC_OPTIONS_H_
