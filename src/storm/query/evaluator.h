// QueryEvaluator: executes a parsed query online against one table.
//
// Execution is a pump loop: draw a batch of spatial online samples, update
// the task's estimator, report progress. The progress callback may return
// false at any time — that is the "user changed the query condition
// mid-flight" path from §1 — and the evaluator returns the best estimate so
// far, flagged as cancelled.

#ifndef STORM_QUERY_EVALUATOR_H_
#define STORM_QUERY_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storm/analytics/kde.h"
#include "storm/analytics/kmeans.h"
#include "storm/analytics/text.h"
#include "storm/analytics/trajectory.h"
#include "storm/estimator/group_by.h"
#include "storm/estimator/quantile.h"
#include "storm/obs/trace.h"
#include "storm/query/exec_options.h"
#include "storm/query/optimizer.h"
#include "storm/util/cancel.h"
#include "storm/util/stopwatch.h"

namespace storm {

class CachedSampler;

/// One per-group output row.
struct GroupRow {
  int64_t key = 0;
  ConfidenceInterval ci;
  ConfidenceInterval group_size;
  uint64_t samples = 0;
};

/// The (possibly approximate) result of a query.
struct QueryResult {
  QueryTask task = QueryTask::kAggregate;
  OptimizerDecision decision;
  std::string strategy;  ///< sampler actually used

  // kAggregate / kQuantile
  ConfidenceInterval ci;
  std::vector<GroupRow> groups;
  /// Asymmetric CI bounds for quantile queries.
  double ci_lower = 0.0;
  double ci_upper = 0.0;

  // kKde
  std::vector<double> kde_map;  ///< row-major kde_width × kde_height
  int kde_width = 0;
  int kde_height = 0;
  double kde_max_half_width = 0.0;

  // kTopTerms
  std::vector<TermEstimate> terms;

  // kCluster
  std::vector<Point2> centers;
  double inertia = 0.0;

  // kTrajectory
  std::vector<TimedPoint> trajectory;

  uint64_t samples = 0;
  double elapsed_ms = 0.0;
  bool exhausted = false;     ///< the answer is exact
  bool cancelled = false;     ///< progress callback or CancelToken stopped it
  bool explain_only = false;  ///< EXPLAIN: `decision` is the whole answer

  /// The query hit its hard deadline: the estimate is the best-so-far at the
  /// cutoff (kDeadlineExceeded semantics — an anytime answer, not an error).
  bool deadline_exceeded = false;
  /// Part of the population was unreachable (dead shards evicted from the
  /// distributed stream): the estimate is uniform over the live partition
  /// only, covering an estimated `coverage` fraction of qualifying records.
  bool degraded = false;
  double coverage = 1.0;
  /// Sampler's final estimate of q = |P ∩ Q| (qualifying records), and
  /// whether it is exact. A networked coordinator weights disjoint shard
  /// results by these when merging (cluster/net_coordinator.h).
  double cardinality_estimate = 0.0;
  bool cardinality_exact = false;

  /// Shared sample-reservoir cache (docs/CACHING.md): whether this plan was
  /// allowed to draw from it, and how many of the served samples actually
  /// came from a cached reservoir (hit fraction = cache_samples / samples).
  /// Local-only annotations — remote observability goes through the
  /// storm_sample_cache_* metrics.
  bool cache_eligible = false;
  uint64_t cache_samples = 0;

  /// Per-query trace (spans, IO deltas, convergence trajectory). Set by
  /// Session::Execute / ExecuteAst; null when the evaluator is used directly
  /// without a profile.
  std::shared_ptr<QueryProfile> profile;
};

// QueryProgress / ProgressFn live in storm/query/exec_options.h (included
// above) alongside the rest of the per-call execution knobs.

class QueryEvaluator {
 public:
  explicit QueryEvaluator(const Table* table,
                          QueryOptimizer optimizer = QueryOptimizer())
      : table_(table), optimizer_(std::move(optimizer)) {}

  /// Runs the query to its stopping rule (or exhaustion / cancellation /
  /// deadline), honouring every knob in `options`: deadline (combined with
  /// the query's own DEADLINE clause, tighter wins), cancel token and
  /// progress callback (both polled once per batch), and parallelism —
  /// when > 1, aggregate/quantile/group-by queries run the multi-worker
  /// sampling engine (per-worker RNG streams + estimator shards, merged
  /// into one CI; see docs/API.md).
  Result<QueryResult> Execute(const QueryAst& ast,
                              const ExecOptions& options = {});

  /// Attaches a profile that execution phases record spans and convergence
  /// points into. The profile must outlive Execute. Optional.
  void set_profile(QueryProfile* profile) { profile_ = profile; }

 private:
  Result<std::unique_ptr<SpatialSampler<3>>> MakeSampler(const QueryAst& ast,
                                                         QueryResult* result) const;
  StoppingRule RuleFor(const QueryAst& ast) const;

  /// Per-worker sampler factory for the parallel engine: the resolved
  /// strategy with private RS-tree buffers and a distinct seed per worker.
  /// (An auto-chosen SampleFirst degrades to RsTree — the single-stream
  /// failover wrapper does not parallelize.)
  std::function<Result<std::unique_ptr<SpatialSampler<3>>>(int)>
  WorkerSamplerFactory(const QueryAst& ast,
                       const OptimizerDecision& decision) const;

  Result<QueryResult> RunAggregate(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunQuantile(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunGroupBy(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunKde(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunTopTerms(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunCluster(const QueryAst& ast, const ProgressFn& fn);
  Result<QueryResult> RunTrajectory(const QueryAst& ast, const ProgressFn& fn);

  /// Deadline/cancellation poll shared by every sampling loop; true means
  /// stop now, with the corresponding result flag set.
  bool Interrupted(QueryResult* result) const;

  /// Copies degraded-mode annotations from the sampler into the result,
  /// plus sample-cache hit stats when MakeSampler armed the cache stage.
  void AnnotateHealth(const SpatialSampler<3>& sampler,
                      QueryResult* result) const;

  const Table* table_;
  QueryOptimizer optimizer_;
  QueryProfile* profile_ = nullptr;
  double effective_deadline_ms_ = 0.0; // min(ExecOptions, query DEADLINE)
  const CancelToken* cancel_ = nullptr;
  int parallelism_ = 1;                // from ExecOptions, clamped to >= 1
  SamplingOptions sampling_;           // from ExecOptions, per Execute
  uint64_t batch_ = 64;                // sampling_.batch_size, clamped >= 1
  Stopwatch query_watch_;              // restarted at each Execute
  /// The cache-drain wrapper MakeSampler installed for the current query
  /// (owned by the returned sampler; null when the plan was ineligible).
  /// Read by AnnotateHealth for the result's hit-fraction annotation.
  mutable CachedSampler* last_cache_ = nullptr;
};

}  // namespace storm

#endif  // STORM_QUERY_EVALUATOR_H_
