// storm::Client — the one-include entry point for applications.
//
//   #include "storm/client.h"
//
//   storm::Client db;
//   db.CreateTable("osm", docs);
//   auto result = db.Execute("SELECT AVG(x) FROM osm ...",
//                            storm::ExecOptions().WithParallelism(4));
//
// The Client owns a Session (table catalog + query engine) and exposes the
// operations an application actually needs: table lifecycle, query
// execution with ExecOptions, updates, and durability controls. Engine
// internals (index structures, WAL, buffer pool) stay out of this header;
// power users can reach them through session() or the storm/storm.h
// umbrella header.

#ifndef STORM_CLIENT_H_
#define STORM_CLIENT_H_

#include <string>
#include <vector>

#include "storm/query/exec_options.h"
#include "storm/query/session.h"

namespace storm {

class Client {
 public:
  Client() = default;

  // Clients own a live engine (tables, buffer pools, WAL handles); copying
  // one is never meaningful.
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Table lifecycle ---

  /// Registers documents as a table (schema discovery + index build).
  Status CreateTable(const std::string& name, const std::vector<Value>& docs,
                     const ImportOptions& import_options = {},
                     const TableConfig& config = {});

  /// Imports a .csv/.tsv/.jsonl/.ndjson file as a table.
  Status ImportFile(const std::string& name, const std::string& path,
                    const ImportOptions& import_options = {},
                    const TableConfig& config = {});

  /// Exports a table's live documents as JSON-lines.
  Status SaveTable(const std::string& name, const std::string& path);

  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- Queries ---

  /// Parses and runs a query in the STORM query language; all per-call
  /// knobs (deadline, cancel, parallelism, progress, profiling) ride in
  /// `options`.
  Result<QueryResult> Execute(const std::string& query,
                              const ExecOptions& options = {});

  // --- Updates ---

  Result<RecordId> Insert(const std::string& table, const Value& doc);
  BatchInsertResult InsertBatch(const std::string& table,
                                const std::vector<Value>& docs);
  Status Delete(const std::string& table, RecordId id);

  // --- Durability (tables created with TableConfig::durable) ---

  Status Checkpoint(const std::string& table);
  Status SimulateCrash(const std::string& table);
  Status Recover(const std::string& table);

  /// Escape hatch to the full engine surface (optimizer, raw tables,
  /// profiles) for callers that outgrow the facade.
  Session& session() { return session_; }
  const Session& session() const { return session_; }

 private:
  Session session_;
};

}  // namespace storm

#endif  // STORM_CLIENT_H_
