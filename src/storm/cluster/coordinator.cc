#include "storm/cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "storm/obs/metrics.h"
#include "storm/obs/trace_context.h"
#include "storm/util/logging.h"

namespace storm {

Cluster::Cluster(std::vector<Entry> entries, int num_shards,
                 Partitioning partitioning, RsTreeOptions options, uint64_t seed)
    : partitioning_(partitioning) {
  assert(num_shards >= 1);
  std::vector<std::vector<Entry>> parts(static_cast<size_t>(num_shards));
  if (partitioning_ == Partitioning::kHilbertRange && !entries.empty()) {
    Rect3 bounds;
    for (const Entry& e : entries) bounds.Expand(e.point);
    mapper_ = std::make_unique<HilbertMapper<3>>(bounds);
    std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      keyed[i] = {mapper_->Index(entries[i].point), i};
    }
    std::sort(keyed.begin(), keyed.end());
    // Equal-size contiguous runs of the Hilbert order. The split keys are
    // recorded first and every entry is then routed through RouteOf, so
    // boundary ties place identically at build time and on later updates.
    size_t per = (keyed.size() + num_shards - 1) / static_cast<size_t>(num_shards);
    for (size_t s = 0; s + 1 < static_cast<size_t>(num_shards); ++s) {
      size_t boundary = (s + 1) * per - 1;
      range_splits_.push_back(boundary < keyed.size() ? keyed[boundary].first
                                                      : ~uint64_t{0});
    }
    for (const auto& [key, idx] : keyed) {
      auto it = std::upper_bound(range_splits_.begin(), range_splits_.end(), key);
      parts[static_cast<size_t>(it - range_splits_.begin())].push_back(
          entries[idx]);
    }
  } else {
    for (const Entry& e : entries) {
      uint64_t h = e.id * 0x9e3779b97f4a7c15ULL;
      parts[h % static_cast<uint64_t>(num_shards)].push_back(e);
    }
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, std::move(parts[static_cast<size_t>(s)]), options, seed));
  }
}

uint64_t Cluster::size() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->size();
  return total;
}

int Cluster::RouteOf(const Point3& p, RecordId id) const {
  if (partitioning_ == Partitioning::kHilbertRange && mapper_ != nullptr) {
    uint64_t key = mapper_->Index(p);
    auto it = std::upper_bound(range_splits_.begin(), range_splits_.end(), key);
    return static_cast<int>(it - range_splits_.begin());
  }
  uint64_t h = id * 0x9e3779b97f4a7c15ULL;
  return static_cast<int>(h % shards_.size());
}

void Cluster::Insert(const Point3& p, RecordId id) {
  shards_[static_cast<size_t>(RouteOf(p, id))]->Insert(p, id);
}

bool Cluster::Erase(const Point3& p, RecordId id) {
  return shards_[static_cast<size_t>(RouteOf(p, id))]->Erase(p, id);
}

Result<uint64_t> Cluster::Count(const Rect3& query) const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    STORM_ASSIGN_OR_RETURN(uint64_t q, s->Count(query));
    total += q;
  }
  return total;
}

int Cluster::ShardsTouched(const Rect3& query) const {
  int touched = 0;
  for (const auto& s : shards_) {
    if (query.Intersects(s->index().tree().bounds())) ++touched;
  }
  return touched;
}

namespace {

class DistributedSampler final : public SpatialSampler<3> {
 public:
  using Entry = RTree<3>::Entry;

  DistributedSampler(const Cluster* cluster, Rng rng,
                     DistributedSamplerOptions options)
      : cluster_(cluster),
        rng_(rng),
        // Separate stream for backoff jitter: retries must not perturb the
        // record-selection sequence, or fault runs would not be comparable
        // to healthy runs under the same seed.
        retry_rng_(rng.Fork(0xBACC0FFULL)),
        options_(options) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    plan_ms_ = reg.GetHistogram("storm_cluster_fanout_plan_ms",
                                "Latency of the per-shard count plan round",
                                MetricsRegistry::LatencyBucketsMs());
    shards_touched_ = reg.GetGauge(
        "storm_cluster_shards_touched",
        "Shards with a non-empty partition for the last distributed query");
    retries_ = reg.GetCounter(
        "storm_cluster_shard_retries_total",
        "Shard calls retried after a transient failure");
    degraded_queries_ = reg.GetCounter(
        "storm_cluster_degraded_queries_total",
        "Distributed queries that lost at least one shard");
    for (int s = 0; s < cluster_->num_shards(); ++s) {
      locals_.push_back(cluster_->shard(s).NewSampler(
          rng_.Fork(s), /*shared_buffers=*/!options_.private_buffers));
      shard_draws_.push_back(
          reg.GetCounter("storm_cluster_shard_draws_total",
                         "Samples drawn from each shard by the coordinator",
                         {{"shard", std::to_string(s)}}));
      shard_evictions_.push_back(
          reg.GetCounter("storm_cluster_shard_evictions_total",
                         "Times each shard was evicted from a merged stream",
                         {{"shard", std::to_string(s)}}));
    }
  }

  Status Begin(const Rect3& query, SamplingMode mode) override {
    mode_ = mode;
    size_t n = locals_.size();
    weights_.assign(n, 0.0);
    initial_weights_.assign(n, 0.0);
    measured_.assign(n, false);
    evicted_.assign(n, false);
    drawn_.assign(n, 0);
    total_ = 0;
    lost_weight_ = 0.0;
    degraded_ = false;
    began_ = false;
    // Plan round-trip: exact per-shard counts, each under retry/backoff and
    // the per-shard deadline. A shard that cannot answer is marked dead-at-
    // plan: it never enters the weight vector, so the merged stream is
    // uniform over the shards that did answer.
    //
    // The fan-out is concurrent — one short-lived thread per shard — so a
    // slow or dying shard costs the plan ONE per-shard deadline instead of
    // one per slow shard. Each thread gets a pre-forked backoff-jitter RNG
    // and writes only its own slot; evictions, weights, and metrics are
    // applied here after the join, so the fault-handling semantics are
    // exactly the sequential ones.
    auto plan_start = std::chrono::steady_clock::now();
    struct PlanSlot {
      Status count_status;
      Status begin_status;
      uint64_t q = 0;
    };
    std::vector<PlanSlot> plan(n);
    std::vector<Rng> jitter;
    jitter.reserve(n);
    for (size_t s = 0; s < n; ++s) jitter.push_back(retry_rng_.Fork(s + 1));
    // Fan-out threads inherit the caller's trace identity so shard-level
    // retries and evictions are attributable to the originating query.
    const TraceContext fanout_trace = CurrentTraceContext();
    auto plan_one = [&](size_t s) {
      ScopedTraceContext trace_scope(fanout_trace);
      PlanSlot& slot = plan[s];
      slot.count_status = RetryWithBackoff(
          options_.retry, &jitter[s],
          [&] {
            Result<uint64_t> r =
                cluster_->shard(static_cast<int>(s)).Count(query);
            if (r.ok()) slot.q = *r;
            return r.status();
          },
          retries_);
      if (slot.count_status.ok()) {
        slot.begin_status = locals_[s]->Begin(query, mode);
      }
    };
    if (n == 1) {
      plan_one(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (size_t s = 0; s < n; ++s) threads.emplace_back(plan_one, s);
      for (std::thread& t : threads) t.join();
    }
    Status last_failure;
    for (size_t s = 0; s < n; ++s) {
      if (!plan[s].count_status.ok()) {
        STORM_LOG(Warn) << "plan: shard " << s << " unreachable, evicting: "
                        << plan[s].count_status;
        MarkEvicted(s);
        last_failure = plan[s].count_status;
        continue;
      }
      STORM_RETURN_NOT_OK(plan[s].begin_status);
      measured_[s] = true;
      weights_[s] = static_cast<double>(plan[s].q);
      initial_weights_[s] = weights_[s];
      total_ += plan[s].q;
    }
    plan_ms_->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - plan_start)
            .count());
    bool any_measured = false;
    for (bool m : measured_) any_measured = any_measured || m;
    if (!any_measured) {
      return Status::Unavailable("no shard reachable at plan time: " +
                                 last_failure.ToString());
    }
    int touched = 0;
    for (double w : weights_) touched += (w > 0.0) ? 1 : 0;
    shards_touched_->Set(touched);
    began_ = true;
    return Status::OK();
  }

  std::optional<Entry> Next() override { return DrawOne(); }

  uint64_t NextBatch(std::span<Entry> out) override {
    uint64_t n = 0;
    for (Entry& slot : out) {
      std::optional<Entry> e = DrawOne();
      if (!e.has_value()) break;
      slot = *e;
      ++n;
    }
    return n;
  }

 private:
  // Shared draw path behind Next()/NextBatch(); non-virtual so the batched
  // feed pays one dispatch per batch. Each draw still re-reads the weight
  // vector, so mid-batch evictions and exhaustions renormalize immediately.
  std::optional<Entry> DrawOne() {
    if (!began_) return std::nullopt;
    // Retry over shards: a shard whose without-replacement stream exhausts
    // has its weight dropped. In without-replacement mode the weight is the
    // shard's *remaining* count, so the merged prefix stays a uniform
    // without-replacement sample of the whole cluster. A shard that stops
    // answering (killed, or slowed past the per-shard deadline) is evicted
    // the same way: its weight leaves the vector, the remaining q_i
    // renormalize, and the stream stays uniform over the live partition.
    while (true) {
      double sum = 0.0;
      for (double w : weights_) sum += w;
      if (sum <= 0.0) return std::nullopt;
      size_t s = rng_.Discrete(weights_);
      Status probe = RetryWithBackoff(
          options_.retry, &retry_rng_,
          [&] { return cluster_->shard(static_cast<int>(s)).ProbeDraw(); },
          retries_);
      if (!probe.ok()) {
        STORM_LOG(Warn) << "draw: shard " << s << " unreachable, evicting: "
                        << probe;
        MarkEvicted(s);
        continue;
      }
      // One-slot batch: shard weights renormalize after every draw, so the
      // pick-then-draw loop is inherently single-entry.
      Entry e;
      if (locals_[s]->NextBatch(std::span<Entry>(&e, 1)) == 1) {
        if (mode_ == SamplingMode::kWithoutReplacement) {
          ++drawn_[s];
          weights_[s] = std::max(0.0, weights_[s] - 1.0);
        }
        shard_draws_[s]->Increment();
        return e;
      }
      if (locals_[s]->IsExhausted()) {
        weights_[s] = 0.0;
        continue;
      }
      return std::nullopt;  // shard failure (e.g. SampleFirst give-up)
    }
  }

 public:
  CardinalityEstimate Cardinality() const override {
    CardinalityEstimate c;
    if (began_) {
      c.lower = c.upper = total_;
      c.estimate = static_cast<double>(total_);
      c.degraded = degraded_;
      c.coverage = Coverage();
      // Exact only when the whole cluster answered: a degraded count is
      // exact over the live partition but not over the population the
      // query asked about.
      c.exact = !degraded_;
    }
    return c;
  }

  bool IsExhausted() const override {
    if (!began_) return false;
    if (total_ == 0) return true;
    for (size_t s = 0; s < locals_.size(); ++s) {
      if (weights_[s] > 0.0 && !locals_[s]->IsExhausted()) return false;
    }
    return true;
  }

  std::string_view name() const override { return "Distributed-RS"; }

 private:
  void MarkEvicted(size_t s) {
    if (evicted_[s]) return;
    evicted_[s] = true;
    if (measured_[s]) {
      // Mid-query death. With replacement every one of the shard's q_i
      // records becomes unreachable; without replacement the ones already
      // delivered were real, so only the remaining weight is lost.
      lost_weight_ += (mode_ == SamplingMode::kWithoutReplacement)
                          ? weights_[s]
                          : initial_weights_[s];
    }
    weights_[s] = 0.0;
    shard_evictions_[s]->Increment();
    if (!degraded_) {
      degraded_ = true;
      degraded_queries_->Increment();
    }
  }

  /// Estimated q_alive / q. Shards dead at plan time never reported a q_i;
  /// their contribution is estimated by scaling their record count with the
  /// selectivity observed on the shards that did answer.
  double Coverage() const {
    double known = 0.0;
    uint64_t measured_size = 0, unmeasured_size = 0;
    for (size_t s = 0; s < measured_.size(); ++s) {
      if (measured_[s]) {
        known += initial_weights_[s];
        measured_size += cluster_->shard(static_cast<int>(s)).size();
      } else {
        unmeasured_size += cluster_->shard(static_cast<int>(s)).size();
      }
    }
    double est_unknown = 0.0;
    if (unmeasured_size > 0 && measured_size > 0) {
      est_unknown = known * static_cast<double>(unmeasured_size) /
                    static_cast<double>(measured_size);
    }
    double denom = known + est_unknown;
    if (denom <= 0.0) return degraded_ ? 0.0 : 1.0;
    return std::max(0.0, (known - lost_weight_) / denom);
  }

  const Cluster* cluster_;
  Rng rng_;
  Rng retry_rng_;
  DistributedSamplerOptions options_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  std::vector<std::unique_ptr<SpatialSampler<3>>> locals_;
  std::vector<double> weights_;
  std::vector<double> initial_weights_;  // q_i at plan time
  std::vector<bool> measured_;           // shard answered the plan round
  std::vector<bool> evicted_;
  std::vector<uint64_t> drawn_;
  std::vector<Counter*> shard_draws_;
  std::vector<Counter*> shard_evictions_;
  Histogram* plan_ms_ = nullptr;
  Gauge* shards_touched_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* degraded_queries_ = nullptr;
  uint64_t total_ = 0;        // Σ q_i over shards that answered the plan
  double lost_weight_ = 0.0;  // weight lost to mid-query evictions
  bool degraded_ = false;
  bool began_ = false;
};

}  // namespace

std::unique_ptr<SpatialSampler<3>> Cluster::NewSampler(
    Rng rng, DistributedSamplerOptions options) const {
  return std::make_unique<DistributedSampler>(this, rng, options);
}

}  // namespace storm
