#include "storm/cluster/coordinator.h"

#include <algorithm>
#include <chrono>

#include "storm/obs/metrics.h"

namespace storm {

Cluster::Cluster(std::vector<Entry> entries, int num_shards,
                 Partitioning partitioning, RsTreeOptions options, uint64_t seed)
    : partitioning_(partitioning) {
  assert(num_shards >= 1);
  std::vector<std::vector<Entry>> parts(static_cast<size_t>(num_shards));
  if (partitioning_ == Partitioning::kHilbertRange && !entries.empty()) {
    Rect3 bounds;
    for (const Entry& e : entries) bounds.Expand(e.point);
    mapper_ = std::make_unique<HilbertMapper<3>>(bounds);
    std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      keyed[i] = {mapper_->Index(entries[i].point), i};
    }
    std::sort(keyed.begin(), keyed.end());
    // Equal-size contiguous runs of the Hilbert order. The split keys are
    // recorded first and every entry is then routed through RouteOf, so
    // boundary ties place identically at build time and on later updates.
    size_t per = (keyed.size() + num_shards - 1) / static_cast<size_t>(num_shards);
    for (size_t s = 0; s + 1 < static_cast<size_t>(num_shards); ++s) {
      size_t boundary = (s + 1) * per - 1;
      range_splits_.push_back(boundary < keyed.size() ? keyed[boundary].first
                                                      : ~uint64_t{0});
    }
    for (const auto& [key, idx] : keyed) {
      auto it = std::upper_bound(range_splits_.begin(), range_splits_.end(), key);
      parts[static_cast<size_t>(it - range_splits_.begin())].push_back(
          entries[idx]);
    }
  } else {
    for (const Entry& e : entries) {
      uint64_t h = e.id * 0x9e3779b97f4a7c15ULL;
      parts[h % static_cast<uint64_t>(num_shards)].push_back(e);
    }
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, std::move(parts[static_cast<size_t>(s)]), options, seed));
  }
}

uint64_t Cluster::size() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->size();
  return total;
}

int Cluster::RouteOf(const Point3& p, RecordId id) const {
  if (partitioning_ == Partitioning::kHilbertRange && mapper_ != nullptr) {
    uint64_t key = mapper_->Index(p);
    auto it = std::upper_bound(range_splits_.begin(), range_splits_.end(), key);
    return static_cast<int>(it - range_splits_.begin());
  }
  uint64_t h = id * 0x9e3779b97f4a7c15ULL;
  return static_cast<int>(h % shards_.size());
}

void Cluster::Insert(const Point3& p, RecordId id) {
  shards_[static_cast<size_t>(RouteOf(p, id))]->Insert(p, id);
}

bool Cluster::Erase(const Point3& p, RecordId id) {
  return shards_[static_cast<size_t>(RouteOf(p, id))]->Erase(p, id);
}

uint64_t Cluster::Count(const Rect3& query) const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->Count(query);
  return total;
}

int Cluster::ShardsTouched(const Rect3& query) const {
  int touched = 0;
  for (const auto& s : shards_) {
    if (query.Intersects(s->index().tree().bounds())) ++touched;
  }
  return touched;
}

namespace {

class DistributedSampler final : public SpatialSampler<3> {
 public:
  using Entry = RTree<3>::Entry;

  DistributedSampler(const Cluster* cluster, Rng rng)
      : cluster_(cluster), rng_(rng) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    plan_ms_ = reg.GetHistogram("storm_cluster_fanout_plan_ms",
                                "Latency of the per-shard count plan round",
                                MetricsRegistry::LatencyBucketsMs());
    shards_touched_ = reg.GetGauge(
        "storm_cluster_shards_touched",
        "Shards with a non-empty partition for the last distributed query");
    for (int s = 0; s < cluster_->num_shards(); ++s) {
      locals_.push_back(cluster_->shard(s).NewSampler(rng_.Fork(s)));
      shard_draws_.push_back(
          reg.GetCounter("storm_cluster_shard_draws_total",
                         "Samples drawn from each shard by the coordinator",
                         {{"shard", std::to_string(s)}}));
    }
  }

  Status Begin(const Rect3& query, SamplingMode mode) override {
    mode_ = mode;
    weights_.assign(locals_.size(), 0.0);
    drawn_.assign(locals_.size(), 0);
    total_ = 0;
    // Plan round-trip: exact per-shard counts.
    auto plan_start = std::chrono::steady_clock::now();
    for (size_t s = 0; s < locals_.size(); ++s) {
      uint64_t q = cluster_->shard(static_cast<int>(s)).Count(query);
      weights_[s] = static_cast<double>(q);
      total_ += q;
      STORM_RETURN_NOT_OK(locals_[s]->Begin(query, mode));
    }
    plan_ms_->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - plan_start)
            .count());
    int touched = 0;
    for (double w : weights_) touched += (w > 0.0) ? 1 : 0;
    shards_touched_->Set(touched);
    began_ = true;
    return Status::OK();
  }

  std::optional<Entry> Next() override {
    if (!began_ || total_ == 0) return std::nullopt;
    // Retry over shards: a shard whose without-replacement stream exhausts
    // has its weight dropped. In without-replacement mode the weight is the
    // shard's *remaining* count, so the merged prefix stays a uniform
    // without-replacement sample of the whole cluster.
    while (true) {
      double sum = 0.0;
      for (double w : weights_) sum += w;
      if (sum <= 0.0) return std::nullopt;
      size_t s = rng_.Discrete(weights_);
      std::optional<Entry> e = locals_[s]->Next();
      if (e.has_value()) {
        if (mode_ == SamplingMode::kWithoutReplacement) {
          ++drawn_[s];
          weights_[s] = std::max(0.0, weights_[s] - 1.0);
        }
        shard_draws_[s]->Increment();
        return e;
      }
      if (locals_[s]->IsExhausted()) {
        weights_[s] = 0.0;
        continue;
      }
      return std::nullopt;  // shard failure (e.g. SampleFirst give-up)
    }
  }

  CardinalityEstimate Cardinality() const override {
    CardinalityEstimate c;
    if (began_) {
      c.lower = c.upper = total_;
      c.exact = true;
      c.estimate = static_cast<double>(total_);
    }
    return c;
  }

  bool IsExhausted() const override {
    if (!began_) return false;
    if (total_ == 0) return true;
    for (size_t s = 0; s < locals_.size(); ++s) {
      if (weights_[s] > 0.0 && !locals_[s]->IsExhausted()) return false;
    }
    return true;
  }

  std::string_view name() const override { return "Distributed-RS"; }

 private:
  const Cluster* cluster_;
  Rng rng_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  std::vector<std::unique_ptr<SpatialSampler<3>>> locals_;
  std::vector<double> weights_;
  std::vector<uint64_t> drawn_;
  std::vector<Counter*> shard_draws_;
  Histogram* plan_ms_ = nullptr;
  Gauge* shards_touched_ = nullptr;
  uint64_t total_ = 0;
  bool began_ = false;
};

}  // namespace

std::unique_ptr<SpatialSampler<3>> Cluster::NewSampler(Rng rng) const {
  return std::make_unique<DistributedSampler>(this, rng);
}

}  // namespace storm
