// NetCoordinator: the networked version of cluster/'s in-process
// DistributedSampler. One coordinator process speaks the server/ frame
// protocol to N remote storm_server shards holding disjoint partitions of
// each table, fans a query out concurrently, and merges the shards'
// streamed PROGRESS frames into a single correctly-weighted anytime
// estimate:
//
//   shards (disjoint partitions, q_i qualifying records each)
//     AVG:        est = Σ q_i·est_i / Σ q_i          (stratified mean)
//                 hw  = sqrt(Σ (q_i/Σq)²·hw_i²)
//     SUM/COUNT:  est = Σ est_i,  hw = sqrt(Σ hw_i²) (partitions add)
//     MIN/MAX:    extremum of the shard extrema (best-effort, like the
//                 single-node estimator)
//
// q_i rides the wire in every PROGRESS frame and the final RESULT (the
// cardinality block, protocol.h), so weights track the shards' own sampler
// estimates as they tighten.
//
// Replica groups: with NetCoordinatorOptions::replicas = R > 1 the shard
// list is read as consecutive groups of R — shards [p·R, (p+1)·R) are
// replicas of partition p, each holding the *same* data (identical demo
// loads, identical fanned-out inserts). Queries pick one live, fresh
// replica per partition; InsertBatch fans every batch to all replicas of
// the owning partition (round-robin over partitions). On mid-stream
// replica death the partition's stream fails over to a live sibling —
// its unmerged partials are discarded and the query re-issues, so the
// merged estimate keeps coverage = 1.0 whenever any replica of every
// partition survives. Only a fully dead partition falls back to the
// drop-and-renormalize degradation below. Replica freshness rides the
// PONG heartbeat (applied-record block, protocol.h); a replica that
// missed inserts while down is caught up from a bounded per-replica
// replay queue drained on readmission — overflow marks it permanently
// stale and it is routed around until a checkpoint rebuild.
//
// Robustness (PR-2's semantics ported onto real sockets):
//   - per-shard connect/RPC retry with exponential backoff + jitter
//     (util/retry.h policies);
//   - per-shard deadlines carved from the query deadline, plus a
//     client-side RPC ceiling so a silent-but-open shard can never hang
//     the fan-out;
//   - heartbeat (PING) health tracking with a consecutive-failure
//     threshold; dead shards are evicted from fan-out, and the merged
//     result is annotated degraded with coverage = reachable weight
//     fraction (q_i renormalization over survivors);
//   - automatic reconnect-and-readmit when an evicted shard answers
//     heartbeats again;
//   - mid-stream failure handling: a shard dying after contributing
//     PROGRESS must not bias the merged estimator — its unmerged partials
//     are dropped, weights renormalize over the survivors, and the merged
//     stream keeps flowing. Only when *no* shard survives does the
//     coordinator fall back to the last-known partials, flagged degraded
//     with coverage 0 (the anytime best-so-far contract).
//
// NetCoordinator implements QueryBackend, so storm_coordinator serves it
// through the regular StormServer: a coordinator is a drop-in RemoteClient
// target, admission control and diagnostics included, and coordinators can
// even front other coordinators (the merged result re-exports Σ q_i as its
// own cardinality).

#ifndef STORM_CLUSTER_NET_COORDINATOR_H_
#define STORM_CLUSTER_NET_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storm/server/backend.h"
#include "storm/server/remote_client.h"
#include "storm/util/retry.h"

namespace storm {

/// One remote storm_server shard.
struct ShardEndpoint {
  std::string host;
  int port = 0;
};

struct NetCoordinatorOptions {
  /// Heartbeat PING cadence per shard.
  double heartbeat_interval_ms = 250.0;
  /// Consecutive probe/RPC failures before a shard is evicted from
  /// fan-out. A single successful probe readmits it.
  int failure_threshold = 3;
  /// Wall-clock ceiling on one heartbeat PING.
  double heartbeat_timeout_ms = 1000.0;

  /// Per-query, per-shard dial policy (attempts + backoff with jitter).
  RetryPolicy connect_retry{
      /*max_attempts=*/3, /*base_backoff_ms=*/20.0, /*multiplier=*/2.0,
      /*max_backoff_ms=*/200.0, /*jitter=*/0.5, /*deadline_ms=*/0.0};

  /// Fraction of the query deadline granted to each shard, leaving the
  /// remainder for fan-out, final merge, and stragglers.
  double shard_deadline_fraction = 0.85;

  /// Client-side ceiling on any single shard RPC beyond the query's own
  /// deadline (RemoteClient::set_rpc_deadline_ms): bounds how long a
  /// silent-but-open shard can stall a query thread.
  double rpc_deadline_ms = 10'000.0;

  /// Cadence of merged PROGRESS snapshots delivered to the caller.
  double merge_interval_ms = 20.0;

  /// Seed for retry jitter. By default a per-query nonce is mixed in so
  /// concurrent queries de-correlate their backoff; set
  /// deterministic_retry_jitter to derive jitter from the seed and shard
  /// index alone (exactly reproducible fault schedules, at the cost of
  /// lockstep retries across queries).
  uint64_t seed = 0x570CC;
  bool deterministic_retry_jitter = false;

  /// Replicas per partition: the shard list is consecutive groups of R
  /// (shards [p·R, (p+1)·R) replicate partition p). Start() requires the
  /// shard count to be a multiple of R. 1 = the classic disjoint fleet.
  int replicas = 1;

  /// Bound on records queued for replay per down replica. A replica whose
  /// queue would overflow is marked permanently stale and routed around —
  /// unbounded catch-up buffers are how coordinators run out of memory.
  size_t replay_limit_records = 100'000;
};

class NetCoordinator : public QueryBackend {
 public:
  explicit NetCoordinator(std::vector<ShardEndpoint> shards,
                          NetCoordinatorOptions options = {});
  ~NetCoordinator() override;

  NetCoordinator(const NetCoordinator&) = delete;
  NetCoordinator& operator=(const NetCoordinator&) = delete;

  /// Probes every shard once (marking unreachable ones toward eviction)
  /// and starts the heartbeat thread. Always succeeds if the shard list is
  /// non-empty — a fleet that is down at start is a degraded fleet, not a
  /// construction error.
  Status Start();

  /// Stops the heartbeat and closes control connections. Idempotent.
  void Stop();

  /// Fans an aggregate query out to one live, fresh replica of every
  /// partition and streams merged anytime progress through
  /// options.progress. Honours deadline_ms (per-shard deadlines are
  /// carved from it), cancel, and trace. A replica dying mid-stream fails
  /// over to a live sibling (partials discarded, stream re-issued), so
  /// coverage stays 1.0 while every partition keeps a survivor.
  /// Non-aggregate tasks and VARIANCE/STDDEV return kNotSupported;
  /// EXPLAIN routes to the first live shard. With no live shard at
  /// fan-out: kUnavailable, promptly.
  Result<QueryResult> Execute(const std::string& query,
                              const ExecOptions& options) override;

  /// Routes the batch to one partition, round-robin (arrival-order
  /// partitioning, the same rule storm_server --shard-index uses for
  /// offline loads) and fans it to every replica of that partition. The
  /// batch is placed once at least one replica applied it; replicas that
  /// were down or failed transiently get it queued for replay.
  BatchInsertResult InsertBatch(const std::string& table,
                                const std::vector<Value>& docs) override;

  /// Checkpoints `table` on every shard; fails if any shard is dead,
  /// stale, or refuses (a partial checkpoint is not durable).
  Status Checkpoint(const std::string& table) override;

  /// Sum over partitions of the freshest replica's applied-record count —
  /// the fleet-level freshness a coordinator fronting this one sees.
  uint64_t AppliedRecords() override;

  size_t shard_count() const { return shards_.size(); }
  /// Replicas per partition (normalized to >= 1).
  size_t replicas() const { return replicas_; }
  size_t partition_count() const { return shards_.size() / replicas_; }
  /// Shards currently admitted to fan-out.
  int live_shards() const;
  /// Partitions with at least one live, non-stale replica.
  int live_partitions() const;
  bool shard_alive(size_t index) const;
  /// True once a replica's replay queue overflowed: it is permanently
  /// routed around (queries and inserts) until a checkpoint rebuild.
  bool shard_stale(size_t index) const;
  /// Latest heartbeat-reported applied-record count (0 until known).
  uint64_t shard_applied_records(size_t index) const;
  bool shard_freshness_known(size_t index) const;
  /// Records queued for replay to a down/transiently-failing replica.
  size_t shard_replay_pending(size_t index) const;

 private:
  struct Shard;

  void HeartbeatLoop();
  /// One PING round trip on the shard's control connection (dialing it if
  /// needed), feeding the health tracker, recording the PONG freshness
  /// block, and draining the replay queue of a readmitted replica.
  void ProbeShard(Shard* shard);
  /// Health accounting: a failed probe/RPC counts toward eviction, a
  /// successful one resets the streak and readmits an evicted shard.
  void NoteProbe(Shard* shard, bool ok);

  /// The partition's live, non-stale replicas, preferred order first:
  /// caught-up before replay-pending, freshness-known before unknown
  /// (deprioritized, not evicted), higher applied count first; ties
  /// rotate by `rotation` so repeated queries spread load.
  std::vector<size_t> PartitionCandidates(size_t partition,
                                          uint64_t rotation) const;
  /// Queues `docs` for replay to a replica that missed them; overflow
  /// marks the replica permanently stale (MarkStale).
  void EnqueueReplay(Shard* shard, const std::string& table,
                     const std::vector<Value>& docs);
  /// Sends the queued replay batches to a readmitted replica, in order.
  /// Transient failures requeue and retry on the next heartbeat;
  /// non-transient failures mean the replica diverged — MarkStale.
  void DrainReplay(Shard* shard);
  void MarkStale(Shard* shard, const std::string& why);

  std::vector<std::unique_ptr<Shard>> shards_;
  NetCoordinatorOptions options_;
  size_t replicas_ = 1;

  std::atomic<bool> running_{false};
  std::thread heartbeat_thread_;
  std::mutex heartbeat_mutex_;  // pairs with heartbeat_cv_ for prompt Stop()
  std::condition_variable heartbeat_cv_;

  std::atomic<uint64_t> next_insert_shard_{0};
  /// Per-query nonce mixed into retry-jitter seeds (see
  /// NetCoordinatorOptions::deterministic_retry_jitter).
  std::atomic<uint64_t> query_nonce_{0};

  // Instruments resolved once in the constructor.
  class Counter* queries_total_ = nullptr;
  class Counter* rpc_failures_total_ = nullptr;
  class Counter* evicted_total_ = nullptr;
  class Counter* readmitted_total_ = nullptr;
  class Counter* partials_dropped_total_ = nullptr;
  class Counter* failovers_total_ = nullptr;
  class Counter* replay_enqueued_total_ = nullptr;
  class Counter* replay_applied_total_ = nullptr;
  class Counter* replica_stale_total_ = nullptr;
};

}  // namespace storm

#endif  // STORM_CLUSTER_NET_COORDINATOR_H_
