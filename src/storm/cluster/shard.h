// Shard: one node of the simulated STORM cluster. The published system ran
// distributed Hilbert R-trees over a MongoDB/DFS cluster; here each shard
// owns a disjoint partition of the entries and an RS-tree over it, and the
// coordinator (coordinator.h) merges per-shard online samples.
//
// Fault model: a shard can be killed (every RPC-shaped call returns
// kUnavailable until Revive), slowed (every call sleeps an injected
// latency), or tripped through the "shard.count" / "shard.draw" failpoints.
// The coordinator reacts with retry/backoff, per-shard deadlines, and
// degraded-mode eviction — see docs/ROBUSTNESS.md.

#ifndef STORM_CLUSTER_SHARD_H_
#define STORM_CLUSTER_SHARD_H_

#include <atomic>
#include <memory>
#include <vector>

#include "storm/sampling/rs_tree.h"
#include "storm/util/result.h"

namespace storm {

/// Failpoint sites evaluated on the shard "RPC" boundary.
inline constexpr std::string_view kFailpointShardCount = "shard.count";
inline constexpr std::string_view kFailpointShardDraw = "shard.draw";

class Shard {
 public:
  using Entry = RTree<3>::Entry;

  Shard(int shard_id, std::vector<Entry> entries, RsTreeOptions options,
        uint64_t seed);

  int id() const { return id_; }
  uint64_t size() const { return index_->size(); }
  const RsTree<3>& index() const { return *index_; }

  /// Exact number of this shard's entries inside the query (the per-shard
  /// "plan" step the coordinator runs at query start). kUnavailable when the
  /// shard is down; also subject to the "shard.count" failpoint and the
  /// injected latency.
  Result<uint64_t> Count(const Rect3& query) const;

  /// Models the per-draw RPC to this shard: applies injected latency, the
  /// "shard.draw" failpoint, and the liveness check. The coordinator calls
  /// this before forwarding Next() to the shard-local sampler.
  Status ProbeDraw() const;

  /// A sampler over this shard's partition. `shared_buffers = false` gives
  /// it a private RS-tree buffer cache (lock-free draws; see RsTree).
  std::unique_ptr<SpatialSampler<3>> NewSampler(
      Rng rng, bool shared_buffers = true) const;

  /// Local updates (entries migrating between shards is out of scope; the
  /// partitioner routes each record to a fixed shard).
  void Insert(const Point3& p, RecordId id);
  bool Erase(const Point3& p, RecordId id);

  /// Fault controls. Kill/Revive/SetLatencyMs are thread-safe and may be
  /// called mid-query to model crashes and stragglers.
  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }
  bool alive() const { return alive_.load(std::memory_order_acquire); }
  void SetLatencyMs(double ms) {
    latency_ms_.store(ms, std::memory_order_relaxed);
  }
  double latency_ms() const {
    return latency_ms_.load(std::memory_order_relaxed);
  }

 private:
  /// Sleeps the injected latency and reports liveness.
  Status CheckAvailable() const;

  int id_;
  std::unique_ptr<RsTree<3>> index_;
  std::atomic<bool> alive_{true};
  std::atomic<double> latency_ms_{0.0};
  class Counter* count_ops_metric_;  // plan-round counts served by this shard
};

}  // namespace storm

#endif  // STORM_CLUSTER_SHARD_H_
