// Shard: one node of the simulated STORM cluster. The published system ran
// distributed Hilbert R-trees over a MongoDB/DFS cluster; here each shard
// owns a disjoint partition of the entries and an RS-tree over it, and the
// coordinator (coordinator.h) merges per-shard online samples.

#ifndef STORM_CLUSTER_SHARD_H_
#define STORM_CLUSTER_SHARD_H_

#include <memory>
#include <vector>

#include "storm/sampling/rs_tree.h"

namespace storm {

class Shard {
 public:
  using Entry = RTree<3>::Entry;

  Shard(int shard_id, std::vector<Entry> entries, RsTreeOptions options,
        uint64_t seed);

  int id() const { return id_; }
  uint64_t size() const { return index_->size(); }
  const RsTree<3>& index() const { return *index_; }

  /// Exact number of this shard's entries inside the query (the per-shard
  /// "plan" step the coordinator runs at query start).
  uint64_t Count(const Rect3& query) const;

  /// A sampler over this shard's partition.
  std::unique_ptr<SpatialSampler<3>> NewSampler(Rng rng) const;

  /// Local updates (entries migrating between shards is out of scope; the
  /// partitioner routes each record to a fixed shard).
  void Insert(const Point3& p, RecordId id);
  bool Erase(const Point3& p, RecordId id);

 private:
  int id_;
  std::unique_ptr<RsTree<3>> index_;
  class Counter* count_ops_metric_;  // plan-round counts served by this shard
};

}  // namespace storm

#endif  // STORM_CLUSTER_SHARD_H_
