#include "storm/cluster/shard.h"

#include <chrono>
#include <thread>

#include "storm/obs/metrics.h"
#include "storm/util/failpoint.h"

namespace storm {

Shard::Shard(int shard_id, std::vector<Entry> entries, RsTreeOptions options,
             uint64_t seed)
    : id_(shard_id),
      index_(std::make_unique<RsTree<3>>(std::move(entries), options,
                                         seed ^ static_cast<uint64_t>(shard_id))),
      count_ops_metric_(MetricsRegistry::Default().GetCounter(
          "storm_cluster_shard_count_ops_total",
          "Plan-round range counts served per shard",
          {{"shard", std::to_string(shard_id)}})) {}

Status Shard::CheckAvailable() const {
  double delay = latency_ms();
  if (delay > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay));
  }
  if (!alive()) {
    return Status::Unavailable("shard " + std::to_string(id_) + " is down");
  }
  return Status::OK();
}

Result<uint64_t> Shard::Count(const Rect3& query) const {
  STORM_FAILPOINT(kFailpointShardCount);
  STORM_RETURN_NOT_OK(CheckAvailable());
  count_ops_metric_->Increment();
  return index_->tree().RangeCount(query);
}

Status Shard::ProbeDraw() const {
  STORM_FAILPOINT(kFailpointShardDraw);
  return CheckAvailable();
}

std::unique_ptr<SpatialSampler<3>> Shard::NewSampler(
    Rng rng, bool shared_buffers) const {
  return index_->NewSampler(rng, shared_buffers);
}

void Shard::Insert(const Point3& p, RecordId id) { index_->Insert(p, id); }

bool Shard::Erase(const Point3& p, RecordId id) { return index_->Erase(p, id); }

}  // namespace storm
