#include "storm/cluster/net_coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <tuple>

#include "storm/obs/metrics.h"
#include "storm/query/parser.h"
#include "storm/util/logging.h"
#include "storm/util/rng.h"
#include "storm/util/stopwatch.h"

namespace storm {

namespace {

/// Per-shard view the fan-out threads write and the coordinating thread
/// merges. `q` is the shard's latest cardinality estimate (its stratum
/// weight); 0 means not yet known.
struct ShardSnap {
  bool started = false;      ///< delivered at least one PROGRESS or RESULT
  bool finished_ok = false;  ///< final RESULT decoded
  bool failed = false;       ///< connect/RPC failure; partials are dropped
  Status error;
  uint64_t samples = 0;
  ConfidenceInterval ci;
  double q = 0.0;
  bool q_exact = false;
  QueryResult result;  ///< valid when finished_ok
};

struct MergedView {
  int contributors = 0;  ///< snaps feeding the estimate
  int lost = 0;          ///< failed snaps + shards dead at fan-out
  ConfidenceInterval ci;
  uint64_t samples = 0;
  double q_total = 0.0;  ///< Σ q over contributors
  bool q_all_exact = false;
  double coverage = 1.0;
  bool degraded = false;
};

/// What a snapshot must be to contribute to the merge.
enum class MergeMode {
  /// Streaming: the latest PROGRESS of every live shard. Failed shards
  /// contribute nothing — their unmerged partials must not bias the
  /// estimate while survivors remain.
  kStreamed,
  /// Final assembly: the final RESULT fields of shards that finished.
  kFinal,
  /// Every shard is gone: the last streamed snapshot of every shard that
  /// ever reported, failed or not. This is the anytime best-so-far
  /// fallback — with no survivor left to renormalize over, the last-known
  /// partials are the answer (flagged degraded, coverage 0 by the caller).
  kLastKnown,
};

/// Stratified merge over disjoint partitions. `dead_at_fanout` counts
/// shards that never entered the fan-out (evicted beforehand).
MergedView MergeSnaps(const std::vector<ShardSnap>& snaps,
                      AggregateKind kind, int dead_at_fanout,
                      MergeMode mode) {
  const bool use_final = mode == MergeMode::kFinal;
  MergedView m;
  m.lost = dead_at_fanout;
  m.degraded = dead_at_fanout > 0;

  // Collect the contributing strata.
  struct Stratum {
    double est, hw, q;
    uint64_t samples;
    bool exact, q_known;
    double confidence;
  };
  std::vector<Stratum> strata;
  double q_known_sum = 0.0;
  int q_known_count = 0;
  double q_lost = 0.0;  ///< last-known weight of lost shards
  // Shards evicted before fan-out have no snapshot and never reported a
  // cardinality; they enter the coverage estimate at the imputed mean.
  int lost_unknown = dead_at_fanout;
  bool all_q_exact = true;
  for (const ShardSnap& s : snaps) {
    bool contributing;
    switch (mode) {
      case MergeMode::kFinal:
        contributing = s.finished_ok;
        break;
      case MergeMode::kStreamed:
        contributing = s.started && !s.failed;
        break;
      case MergeMode::kLastKnown:
        contributing = s.started;
        break;
    }
    if (s.q > 0.0) {
      q_known_sum += s.q;
      ++q_known_count;
    }
    if (!contributing) {
      ++m.lost;
      m.degraded = true;
      if (s.q > 0.0) {
        q_lost += s.q;
      } else {
        ++lost_unknown;
      }
      continue;
    }
    Stratum st;
    if (use_final) {
      st.est = s.result.ci.estimate;
      st.hw = s.result.ci.half_width;
      st.samples = s.result.samples;
      st.exact = s.result.ci.exact;
      st.confidence = s.result.ci.confidence;
      if (s.result.degraded) m.degraded = true;
    } else {
      st.est = s.ci.estimate;
      st.hw = s.ci.half_width;
      st.samples = s.samples;
      st.exact = s.ci.exact;
      st.confidence = s.ci.confidence;
    }
    st.q = s.q;
    st.q_known = s.q > 0.0;
    if (!s.q_exact) all_q_exact = false;
    strata.push_back(st);
    ++m.contributors;
  }
  if (m.contributors == 0) return m;

  // Weights: the shard's qualifying-record estimate q_i. Shards that have
  // not reported q yet get the mean of the known ones; with no q known at
  // all, samples drawn so far stand in (an early-stream approximation that
  // self-corrects as soon as cardinalities arrive).
  const double q_mean =
      q_known_count > 0 ? q_known_sum / q_known_count : 0.0;
  double weight_sum = 0.0;
  std::vector<double> weights(strata.size());
  for (size_t i = 0; i < strata.size(); ++i) {
    double w = strata[i].q_known ? strata[i].q : q_mean;
    if (w <= 0.0) w = static_cast<double>(strata[i].samples);
    if (w <= 0.0) w = 1.0;
    weights[i] = w;
    weight_sum += w;
    m.samples += strata[i].samples;
    m.q_total += strata[i].q_known ? strata[i].q : q_mean;
  }

  m.ci.confidence = strata[0].confidence;
  m.ci.samples = m.samples;
  switch (kind) {
    case AggregateKind::kAvg: {
      // Stratified mean over disjoint partitions: Σ w_i·μ_i / W with
      // variance Σ (w_i/W)²·hw_i² (same confidence z cancels, so half
      // widths combine directly).
      double est = 0.0, var = 0.0;
      bool exact = true;
      for (size_t i = 0; i < strata.size(); ++i) {
        const double f = weights[i] / weight_sum;
        est += f * strata[i].est;
        var += f * f * strata[i].hw * strata[i].hw;
        exact = exact && strata[i].exact;
      }
      m.ci.estimate = est;
      m.ci.half_width = std::sqrt(var);
      m.ci.exact = exact && m.lost == 0;
      break;
    }
    case AggregateKind::kSum:
    case AggregateKind::kCount: {
      // Partition totals add; shard estimators are independent, so the
      // half widths add in quadrature.
      double est = 0.0, var = 0.0;
      bool exact = true;
      for (const Stratum& st : strata) {
        est += st.est;
        var += st.hw * st.hw;
        exact = exact && st.exact;
      }
      m.ci.estimate = est;
      m.ci.half_width = std::sqrt(var);
      m.ci.exact = exact && m.lost == 0;
      break;
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      // Best-effort extremum of the shard extrema, like the single-node
      // estimator (sample extrema are biased; no CI).
      size_t pick = 0;
      for (size_t i = 1; i < strata.size(); ++i) {
        const bool better = kind == AggregateKind::kMin
                                ? strata[i].est < strata[pick].est
                                : strata[i].est > strata[pick].est;
        if (better) pick = i;
      }
      m.ci.estimate = strata[pick].est;
      m.ci.half_width = strata[pick].hw;
      m.ci.exact = strata[pick].exact && m.lost == 0;
      break;
    }
    default:
      break;  // guarded out by Execute before fan-out
  }
  m.q_all_exact = all_q_exact && m.lost == 0;

  // Coverage: reachable weight over total weight, with lost shards that
  // never reported a cardinality imputed at the mean of the known ones
  // (the in-process DistributedSampler scales unmeasured shards the same
  // way). With no cardinality known anywhere, fall back to shard counts.
  double lost_est = q_lost + lost_unknown * q_mean;
  if (m.lost > 0) {
    if (m.q_total + lost_est > 0.0) {
      m.coverage = m.q_total / (m.q_total + lost_est);
    } else {
      m.coverage = static_cast<double>(m.contributors) /
                   static_cast<double>(m.contributors + m.lost);
    }
  }
  return m;
}

bool AggregateSupported(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAvg:
    case AggregateKind::kSum:
    case AggregateKind::kCount:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return true;
    default:
      // VARIANCE/STDDEV need cross-shard moment pooling, not a weighted
      // mean of per-shard intervals; refuse rather than answer wrong.
      return false;
  }
}

}  // namespace

/// One batch a down replica missed, waiting to be replayed on
/// readmission. Bounded per replica by replay_limit_records.
struct ReplayBatch {
  std::string table;
  std::vector<Value> docs;
};

struct NetCoordinator::Shard {
  ShardEndpoint endpoint;
  size_t index = 0;
  /// Guards the control client, the failure streak, and the replay queue
  /// (heartbeat thread, InsertBatch/Checkpoint callers). The alive/stale/
  /// freshness flags are atomic so fan-out replica selection never blocks
  /// on a probe in flight.
  std::mutex mutex;
  RemoteClient control;
  int consecutive_failures = 0;
  std::atomic<bool> alive{true};
  /// Replay overflow or divergence: permanently routed around (queries
  /// and inserts) until a checkpoint rebuild replaces the replica.
  std::atomic<bool> stale{false};
  /// Freshness from the PONG applied-record block. Unknown (false) for
  /// pre-freshness servers — deprioritized in replica selection, never
  /// evicted for it.
  std::atomic<bool> freshness_known{false};
  std::atomic<uint64_t> applied_records{0};
  /// Records queued in `replay` (mirrored atomically so candidate
  /// ordering reads it without the mutex).
  std::atomic<size_t> replay_pending{0};
  std::deque<ReplayBatch> replay;  // guarded by mutex
  size_t replay_records = 0;       // guarded by mutex; mirrors the deque
};

NetCoordinator::NetCoordinator(std::vector<ShardEndpoint> shards,
                               NetCoordinatorOptions options)
    : options_(options),
      replicas_(options.replicas < 1 ? 1
                                     : static_cast<size_t>(options.replicas)) {
  shards_.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = std::move(shards[i]);
    shard->index = i;
    shard->control.set_rpc_deadline_ms(options_.rpc_deadline_ms);
    shard->control.set_max_reconnect_attempts(1);
    shards_.push_back(std::move(shard));
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  queries_total_ = reg.GetCounter("storm_coord_queries_total",
                                  "Queries fanned out by the coordinator");
  rpc_failures_total_ =
      reg.GetCounter("storm_coord_shard_rpc_failures_total",
                     "Transient shard RPC failures (incl. dial retries)");
  evicted_total_ = reg.GetCounter(
      "storm_coord_shard_evicted_total",
      "Shards evicted after consecutive probe failures");
  readmitted_total_ = reg.GetCounter(
      "storm_coord_shard_readmitted_total",
      "Evicted shards readmitted after a successful probe");
  partials_dropped_total_ = reg.GetCounter(
      "storm_coord_partials_dropped_total",
      "Mid-stream shard failures whose partial estimates were discarded");
  failovers_total_ = reg.GetCounter(
      "storm_coord_failovers_total",
      "Partition streams re-issued on a sibling replica after a failure");
  replay_enqueued_total_ = reg.GetCounter(
      "storm_coord_replay_enqueued_records_total",
      "Records queued for replay to replicas that missed inserts");
  replay_applied_total_ = reg.GetCounter(
      "storm_coord_replay_applied_records_total",
      "Queued records replayed to readmitted replicas");
  replica_stale_total_ = reg.GetCounter(
      "storm_coord_replica_stale_total",
      "Replicas marked permanently stale (replay overflow or divergence)");
}

NetCoordinator::~NetCoordinator() { Stop(); }

Status NetCoordinator::Start() {
  if (shards_.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  if (shards_.size() % replicas_ != 0) {
    return Status::InvalidArgument(
        "shard count (" + std::to_string(shards_.size()) +
        ") is not a multiple of --replicas (" + std::to_string(replicas_) +
        "); the shard list is read as consecutive replica groups");
  }
  if (running_.exchange(true)) return Status::OK();
  // One synchronous probe round so live_shards() is meaningful right away;
  // unreachable shards start their failure streak (a down fleet is a
  // degraded fleet, not a construction error).
  for (auto& shard : shards_) ProbeShard(shard.get());
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  return Status::OK();
}

void NetCoordinator::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->control.Close();
  }
}

int NetCoordinator::live_shards() const {
  int live = 0;
  for (const auto& shard : shards_) {
    if (shard->alive.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

bool NetCoordinator::shard_alive(size_t index) const {
  return index < shards_.size() &&
         shards_[index]->alive.load(std::memory_order_acquire);
}

bool NetCoordinator::shard_stale(size_t index) const {
  return index < shards_.size() &&
         shards_[index]->stale.load(std::memory_order_acquire);
}

uint64_t NetCoordinator::shard_applied_records(size_t index) const {
  if (index >= shards_.size()) return 0;
  return shards_[index]->applied_records.load(std::memory_order_acquire);
}

bool NetCoordinator::shard_freshness_known(size_t index) const {
  return index < shards_.size() &&
         shards_[index]->freshness_known.load(std::memory_order_acquire);
}

size_t NetCoordinator::shard_replay_pending(size_t index) const {
  if (index >= shards_.size()) return 0;
  return shards_[index]->replay_pending.load(std::memory_order_acquire);
}

int NetCoordinator::live_partitions() const {
  int live = 0;
  for (size_t p = 0; p < partition_count(); ++p) {
    for (size_t k = 0; k < replicas_; ++k) {
      const Shard& s = *shards_[p * replicas_ + k];
      if (s.alive.load(std::memory_order_acquire) &&
          !s.stale.load(std::memory_order_acquire)) {
        ++live;
        break;
      }
    }
  }
  return live;
}

uint64_t NetCoordinator::AppliedRecords() {
  uint64_t total = 0;
  for (size_t p = 0; p < partition_count(); ++p) {
    uint64_t best = 0;
    for (size_t k = 0; k < replicas_; ++k) {
      const Shard& s = *shards_[p * replicas_ + k];
      if (s.freshness_known.load(std::memory_order_acquire)) {
        best = std::max(best,
                        s.applied_records.load(std::memory_order_acquire));
      }
    }
    total += best;
  }
  return total;
}

std::vector<size_t> NetCoordinator::PartitionCandidates(
    size_t partition, uint64_t rotation) const {
  std::vector<size_t> out;
  out.reserve(replicas_);
  for (size_t k = 0; k < replicas_; ++k) {
    const size_t index = partition * replicas_ + (k + rotation) % replicas_;
    const Shard& s = *shards_[index];
    if (s.alive.load(std::memory_order_acquire) &&
        !s.stale.load(std::memory_order_acquire)) {
      out.push_back(index);
    }
  }
  // Preference: caught-up before replay-pending, freshness-known before
  // unknown (a pre-freshness server is deprioritized, not evicted), then
  // the highest applied count. stable_sort keeps the rotation order for
  // ties so repeated queries spread across equally-fresh replicas.
  auto rank = [this](size_t i) {
    const Shard& s = *shards_[i];
    return std::tuple<int, int, uint64_t>(
        s.replay_pending.load(std::memory_order_acquire) > 0 ? 1 : 0,
        s.freshness_known.load(std::memory_order_acquire) ? 0 : 1,
        ~s.applied_records.load(std::memory_order_acquire));
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](size_t a, size_t b) { return rank(a) < rank(b); });
  return out;
}

void NetCoordinator::HeartbeatLoop() {
  while (running_.load(std::memory_order_acquire)) {
    for (auto& shard : shards_) {
      if (!running_.load(std::memory_order_acquire)) return;
      ProbeShard(shard.get());
    }
    std::unique_lock<std::mutex> lock(heartbeat_mutex_);
    heartbeat_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            options_.heartbeat_interval_ms),
        [this] { return !running_.load(std::memory_order_acquire); });
  }
}

void NetCoordinator::ProbeShard(Shard* shard) {
  bool ok;
  PongFreshness fresh;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // A probe is a liveness question, not work: cap it at the heartbeat
    // timeout, not the much larger RPC deadline — a silent-but-open shard
    // must not stall the heartbeat round (and everything queued on this
    // mutex) for rpc_deadline_ms per probe.
    if (options_.heartbeat_timeout_ms > 0.0) {
      shard->control.set_rpc_deadline_ms(options_.heartbeat_timeout_ms);
    }
    ok = shard->control.connected() ||
         shard->control.Connect(shard->endpoint.host, shard->endpoint.port)
             .ok();
    if (ok) {
      // The freshness-carrying PING doubles as the liveness probe.
      Result<PongFreshness> pong = shard->control.PingFresh();
      ok = pong.ok();
      if (ok) fresh = *pong;
    }
    shard->control.set_rpc_deadline_ms(options_.rpc_deadline_ms);
  }
  NoteProbe(shard, ok);
  if (ok) {
    if (fresh.known) {
      shard->applied_records.store(fresh.applied_records,
                                   std::memory_order_release);
      shard->freshness_known.store(true, std::memory_order_release);
    }
    // A readmitted (or merely flaky) replica with queued batches catches
    // up here, on the heartbeat thread — never on a query path.
    if (shard->alive.load(std::memory_order_acquire) &&
        shard->replay_pending.load(std::memory_order_acquire) > 0) {
      DrainReplay(shard);
    }
  }
}

void NetCoordinator::EnqueueReplay(Shard* shard, const std::string& table,
                                   const std::vector<Value>& docs) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->stale.load(std::memory_order_acquire)) return;
    if (shard->replay_records + docs.size() >
        options_.replay_limit_records) {
      overflow = true;
    } else {
      shard->replay.push_back(ReplayBatch{table, docs});
      shard->replay_records += docs.size();
      shard->replay_pending.store(shard->replay_records,
                                  std::memory_order_release);
    }
  }
  if (overflow) {
    MarkStale(shard, "replay queue overflow (limit " +
                         std::to_string(options_.replay_limit_records) +
                         " records)");
  } else {
    replay_enqueued_total_->Increment(docs.size());
  }
}

void NetCoordinator::DrainReplay(Shard* shard) {
  while (running_.load(std::memory_order_acquire) &&
         shard->alive.load(std::memory_order_acquire)) {
    ReplayBatch batch;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (shard->replay.empty()) return;
      batch = std::move(shard->replay.front());
      shard->replay.pop_front();
    }
    BatchInsertResult result;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (!shard->control.connected()) {
        result.status =
            shard->control.Connect(shard->endpoint.host, shard->endpoint.port);
      }
      if (result.status.ok()) {
        result = shard->control.InsertBatch(batch.table, batch.docs);
      }
    }
    if (result.status.ok()) {
      const size_t applied = batch.docs.size();
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->replay_records -= std::min(shard->replay_records, applied);
        shard->replay_pending.store(shard->replay_records,
                                    std::memory_order_release);
      }
      replay_applied_total_->Increment(applied);
      continue;
    }
    if (IsTransient(result.status) ||
        result.status.IsDeadlineExceeded()) {
      // Requeue at the front (order preserved) and retry on the next
      // heartbeat; the failure also feeds the health tracker.
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->replay.push_front(std::move(batch));
      }
      rpc_failures_total_->Increment();
      NoteProbe(shard, false);
      return;
    }
    // Non-transient refusal of data its siblings hold: the replica
    // diverged and can no longer answer for this partition.
    MarkStale(shard, "replay refused: " + result.status.ToString());
    return;
  }
}

void NetCoordinator::MarkStale(Shard* shard, const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->stale.exchange(true, std::memory_order_acq_rel)) return;
    shard->replay.clear();
    shard->replay_records = 0;
    shard->replay_pending.store(0, std::memory_order_release);
  }
  replica_stale_total_->Increment();
  STORM_LOG(Warn) << "coordinator: replica " << shard->index << " ("
                  << shard->endpoint.host << ":" << shard->endpoint.port
                  << ") marked permanently stale — " << why
                  << "; routed around until checkpoint rebuild";
}

void NetCoordinator::NoteProbe(Shard* shard, bool ok) {
  std::lock_guard<std::mutex> lock(shard->mutex);
  if (ok) {
    shard->consecutive_failures = 0;
    if (!shard->alive.load(std::memory_order_acquire)) {
      shard->alive.store(true, std::memory_order_release);
      readmitted_total_->Increment();
      STORM_LOG(Info) << "coordinator: shard " << shard->index << " ("
                      << shard->endpoint.host << ":" << shard->endpoint.port
                      << ") readmitted";
    }
    return;
  }
  ++shard->consecutive_failures;
  if (shard->alive.load(std::memory_order_acquire) &&
      shard->consecutive_failures >= options_.failure_threshold) {
    shard->alive.store(false, std::memory_order_release);
    evicted_total_->Increment();
    STORM_LOG(Warn) << "coordinator: shard " << shard->index << " ("
                    << shard->endpoint.host << ":" << shard->endpoint.port
                    << ") evicted after " << shard->consecutive_failures
                    << " consecutive failures";
  }
}

Result<QueryResult> NetCoordinator::Execute(const std::string& query,
                                            const ExecOptions& options) {
  queries_total_->Increment();
  STORM_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(query));

  // Live snapshot for the fan-out: one stream per partition, served by one
  // live, fresh replica (PartitionCandidates preference order). A partition
  // with no live, non-stale replica at all is lost weight.
  std::vector<size_t> targets;  // partition indices
  for (size_t p = 0; p < partition_count(); ++p) {
    if (!PartitionCandidates(p, 0).empty()) targets.push_back(p);
  }
  const int dead_at_fanout =
      static_cast<int>(partition_count() - targets.size());
  if (targets.empty()) {
    if (replicas_ == 1) {
      return Status::Unavailable("no live shard: all " +
                                 std::to_string(shards_.size()) +
                                 " shards evicted");
    }
    return Status::Unavailable(
        "no live partition: all " + std::to_string(partition_count()) +
        " partitions are dead or stale");
  }

  if (ast.explain) {
    // Plan-only: no samples to merge — route to the first reachable live,
    // non-stale shard on a dedicated socket, like the fan-out does. Holding
    // shard->mutex across a whole RPC would block heartbeats and
    // InsertBatch/Checkpoint on that shard for up to rpc_deadline_ms.
    Status last = Status::Unavailable("no live shard answered EXPLAIN");
    for (const auto& shard_ptr : shards_) {
      Shard* shard = shard_ptr.get();
      if (!shard->alive.load(std::memory_order_acquire) ||
          shard->stale.load(std::memory_order_acquire)) {
        continue;
      }
      RemoteClient client;
      client.set_rpc_deadline_ms(options_.rpc_deadline_ms);
      client.set_max_reconnect_attempts(0);
      Status st = client.Connect(shard->endpoint.host, shard->endpoint.port);
      if (!st.ok()) {
        last = st;
        continue;
      }
      return client.Execute(query, options);
    }
    return last;
  }
  if (ast.task != QueryTask::kAggregate) {
    return Status::NotSupported(
        std::string("networked coordinator merges aggregate queries only; ") +
        std::string(QueryTaskToString(ast.task)) + " is not yet distributed");
  }
  if (!ast.group_by.empty() || ast.GroupByCell()) {
    return Status::NotSupported(
        "networked coordinator does not merge GROUP BY yet");
  }
  if (!AggregateSupported(ast.aggregate)) {
    return Status::NotSupported(
        std::string(AggregateKindToString(ast.aggregate)) +
        " is not mergeable across shards (needs moment pooling)");
  }

  // Retry-jitter seeding: per-shard AND per-query. A seed derived from the
  // shard index alone is identical on every query, so concurrent queries
  // would back off in lockstep and re-dial a recovering shard at the same
  // instants — exactly the thundering herd jitter exists to spread.
  const uint64_t jitter_nonce =
      options_.deterministic_retry_jitter
          ? 0
          : query_nonce_.fetch_add(1, std::memory_order_relaxed) + 1;

  Stopwatch watch;
  const double shard_deadline =
      options.deadline_ms > 0.0
          ? std::max(1.0, options.deadline_ms * options_.shard_deadline_fraction)
          : 0.0;

  struct FanoutState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<ShardSnap> snaps;
    int done = 0;
  };
  FanoutState state;
  state.snaps.resize(targets.size());
  std::vector<CancelToken> shard_cancels(targets.size());

  std::vector<std::thread> threads;
  threads.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    threads.emplace_back([&, t] {
      const size_t partition = targets[t];
      // Replica rotation: deterministic schedules always start at slot 0;
      // otherwise the per-query nonce spreads load across siblings.
      const uint64_t rotation =
          options_.deterministic_retry_jitter ? 0 : jitter_nonce;
      std::vector<size_t> tried;
      Status last_error = Status::Unavailable(
          "no live replica in partition " + std::to_string(partition));
      bool finished = false;
      while (!finished) {
        // Next untried candidate, in preference order — recomputed each
        // pass, since a sibling may have died or been readmitted while the
        // previous attempt streamed.
        size_t index = shards_.size();
        for (size_t cand : PartitionCandidates(partition, rotation)) {
          if (std::find(tried.begin(), tried.end(), cand) == tried.end()) {
            index = cand;
            break;
          }
        }
        if (index == shards_.size()) break;  // candidates exhausted
        if (!tried.empty()) failovers_total_->Increment();
        tried.push_back(index);
        Shard* shard = shards_[index].get();

        // A fresh socket per (query, replica): sockets are cheap, and the
        // control connection must stay free for heartbeats.
        RemoteClient client;
        client.set_rpc_deadline_ms(options_.rpc_deadline_ms);
        client.set_max_reconnect_attempts(0);  // the dial policy owns retries
        Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)) ^
                (0xda942042e4dd58b5ULL * jitter_nonce));
        RetryPolicy dial = options_.connect_retry;
        if (shard_deadline > 0.0 &&
            (dial.deadline_ms <= 0.0 || shard_deadline < dial.deadline_ms)) {
          dial.deadline_ms = shard_deadline;  // dialing can't eat the budget
        }
        Status connected = RetryWithBackoff(
            dial, &rng,
            [&] {
              return client.Connect(shard->endpoint.host,
                                    shard->endpoint.port);
            },
            rpc_failures_total_);
        if (!connected.ok()) {
          last_error = connected;
          NoteProbe(shard, false);
          if (shard_cancels[t].IsCancelled()) break;
          continue;  // fail over to the next sibling
        }

        ExecOptions shard_opts;
        shard_opts.parallelism = options.parallelism;
        shard_opts.deadline_ms = shard_deadline;
        shard_opts.profile = false;
        shard_opts.cancel = &shard_cancels[t];
        shard_opts.trace = options.trace;
        // Sample draws never cross the coordinator wire (PROGRESS/RESULT
        // carry estimates), so reservoir caching happens in each shard's
        // process cache; forward only the on/off knob — NOT the whole
        // sampling struct, whose stratify knobs the shard must derive from
        // its own client capabilities.
        shard_opts.sampling.sample_cache = options.sampling.sample_cache;
        shard_opts.progress = [&state, t](const QueryProgress& p) {
          {
            std::lock_guard<std::mutex> lock(state.mutex);
            ShardSnap& snap = state.snaps[t];
            snap.started = true;
            snap.samples = p.samples;
            snap.ci = p.ci;
            if (p.cardinality_estimate > 0.0) {
              snap.q = p.cardinality_estimate;
              snap.q_exact = p.cardinality_exact;
            }
          }
          state.cv.notify_all();
          return true;
        };

        Result<QueryResult> result = client.Execute(query, shard_opts);
        if (result.ok()) {
          {
            std::lock_guard<std::mutex> lock(state.mutex);
            ShardSnap& snap = state.snaps[t];
            snap.started = true;
            snap.finished_ok = true;
            snap.result = std::move(*result);
            snap.samples = snap.result.samples;
            snap.ci = snap.result.ci;
            if (snap.result.cardinality_estimate > 0.0) {
              snap.q = snap.result.cardinality_estimate;
              snap.q_exact = snap.result.cardinality_exact;
            }
          }
          NoteProbe(shard, true);
          finished = true;
          break;
        }
        last_error = result.status();
        const bool transient =
            IsTransient(last_error) || last_error.IsDeadlineExceeded();
        bool has_next = false;
        if (transient) {
          for (size_t cand : PartitionCandidates(partition, rotation)) {
            if (std::find(tried.begin(), tried.end(), cand) == tried.end()) {
              has_next = true;
              break;
            }
          }
        }
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          ShardSnap& snap = state.snaps[t];
          if (snap.started) {
            partials_dropped_total_->Increment();
            if (has_next) {
              // The dead replica's unmerged partials must not bias the
              // estimate — discard them before re-issuing on a sibling.
              // The cardinality weight survives: replicas hold identical
              // data, so q keeps the merged coverage honest meanwhile.
              // With no sibling left the partials stay: they are the
              // anytime best-so-far should every partition end up lost
              // (the kLastKnown fallback).
              snap.started = false;
              snap.samples = 0;
              snap.ci = ConfidenceInterval{};
            }
          }
        }
        if (!transient) break;  // a bad query fails identically everywhere
        rpc_failures_total_->Increment();
        NoteProbe(shard, false);
        if (!has_next || shard_cancels[t].IsCancelled()) break;
      }
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!finished) {
          ShardSnap& snap = state.snaps[t];
          snap.failed = true;
          snap.error = last_error;
        }
        ++state.done;
      }
      state.cv.notify_all();
    });
  }

  // Coordinating loop: wake on every shard event (or the merge cadence),
  // re-merge the latest snapshots, stream to the caller, honour cancel and
  // the query deadline. A failed shard's snapshot drops out of the merge
  // entirely — its partials must not bias the survivors — and the weights
  // renormalize implicitly because MergeSnaps sums only the contributors.
  bool cancelled = false;
  bool deadline_hit = false;
  auto fire_cancels = [&] {
    for (CancelToken& token : shard_cancels) token.Cancel();
  };
  while (true) {
    std::vector<ShardSnap> snapshot;
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      if (state.done >= static_cast<int>(targets.size())) break;
      state.cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                                  options_.merge_interval_ms));
      snapshot = state.snaps;  // copy: merge + callback run unlocked
    }
    if (options.cancel != nullptr && options.cancel->IsCancelled() &&
        !cancelled) {
      cancelled = true;
      fire_cancels();
    }
    if (!deadline_hit && options.deadline_ms > 0.0 &&
        watch.ElapsedMillis() >= options.deadline_ms) {
      deadline_hit = true;
      fire_cancels();
    }
    if (options.progress) {
      MergedView m = MergeSnaps(snapshot, ast.aggregate, dead_at_fanout,
                                MergeMode::kStreamed);
      if (m.contributors > 0) {
        QueryProgress p;
        p.samples = m.samples;
        p.elapsed_ms = watch.ElapsedMillis();
        p.ci = m.ci;
        p.cardinality_estimate = m.q_total;
        p.cardinality_exact = m.q_all_exact;
        if (!options.progress(p) && !cancelled) {
          cancelled = true;
          fire_cancels();
        }
      }
    }
  }
  for (std::thread& thread : threads) thread.join();

  // Final assembly from the partitions' final RESULTs only (a partition
  // whose every tried replica died mid-stream contributed nothing).
  const std::vector<ShardSnap>& snaps = state.snaps;
  const std::string topology =
      replicas_ == 1
          ? std::to_string(shards_.size()) + " shards"
          : std::to_string(partition_count()) + " partitions x" +
                std::to_string(replicas_) + " replicas";
  const char* stratum_noun = replicas_ == 1 ? " shards" : " partitions";
  int finished = 0;
  bool any_started = false;
  for (const ShardSnap& s : snaps) {
    if (s.finished_ok) ++finished;
    if (s.started) any_started = true;
  }

  if (finished == 0) {
    if (!any_started) {
      // Nothing ever arrived. Prefer a non-transient shard error (a bad
      // query fails identically everywhere) over a generic unreachable.
      for (const ShardSnap& s : snaps) {
        if (s.failed && !IsTransient(s.error) &&
            !s.error.IsDeadlineExceeded()) {
          return s.error;
        }
      }
      return Status::Unavailable(
          "all " + std::to_string(targets.size()) + " live" + stratum_noun +
          " failed before producing any estimate");
    }
    // Every shard died mid-stream. With no survivor to renormalize over,
    // the anytime contract still owes the caller its best-so-far: the
    // last-known partials of every shard that ever streamed (kLastKnown —
    // the streamed mode would exclude the failed snaps and merge nothing),
    // flagged unmistakably (degraded, coverage 0).
    MergedView m = MergeSnaps(snaps, ast.aggregate, dead_at_fanout,
                              MergeMode::kLastKnown);
    QueryResult out;
    out.task = ast.task;
    out.ci = m.ci;
    out.samples = m.samples;
    out.elapsed_ms = watch.ElapsedMillis();
    out.degraded = true;
    out.coverage = 0.0;
    out.cancelled = cancelled;
    out.deadline_exceeded = deadline_hit;
    out.strategy =
        "net_coordinator(0/" + topology + "; last-known partials)";
    out.decision.strategy = SamplerStrategy::kDistributed;
    out.decision.reason =
        "all shards lost mid-query; result is the last streamed partial "
        "merge and may be biased";
    out.cardinality_estimate = m.q_total;
    return out;
  }

  MergedView m =
      MergeSnaps(snaps, ast.aggregate, dead_at_fanout, MergeMode::kFinal);
  QueryResult out;
  out.task = ast.task;
  out.ci = m.ci;
  out.samples = m.samples;
  out.elapsed_ms = watch.ElapsedMillis();
  out.cancelled = cancelled;
  bool all_exhausted = true;
  bool any_shard_deadline = false;
  for (const ShardSnap& s : snaps) {
    if (s.finished_ok) {
      all_exhausted = all_exhausted && s.result.exhausted;
      any_shard_deadline = any_shard_deadline || s.result.deadline_exceeded;
    } else {
      all_exhausted = false;
    }
  }
  out.exhausted = all_exhausted && m.lost == 0;
  out.deadline_exceeded = deadline_hit || any_shard_deadline;
  out.degraded = m.degraded;
  out.coverage = m.coverage;
  out.cardinality_estimate = m.q_total;
  out.cardinality_exact = m.q_all_exact;
  out.strategy =
      "net_coordinator(" + std::to_string(finished) + "/" + topology + ")";
  out.decision.strategy = SamplerStrategy::kDistributed;
  out.decision.estimated_cardinality = m.q_total;
  out.decision.reason =
      m.lost == 0
          ? "fan-out over " + std::to_string(finished) + stratum_noun
          : "fan-out degraded: " + std::to_string(m.lost) + " of " +
                std::to_string(partition_count()) + stratum_noun +
                " lost; weights renormalized over survivors";
  return out;
}

BatchInsertResult NetCoordinator::InsertBatch(const std::string& table,
                                              const std::vector<Value>& docs) {
  BatchInsertResult out;
  const size_t partitions = partition_count();
  Status last = Status::Unavailable("no live shard");
  for (size_t attempt = 0; attempt < partitions; ++attempt) {
    const size_t partition = next_insert_shard_.fetch_add(1) % partitions;
    // The batch is *placed* on a partition only if at least one replica
    // applies it; otherwise the round-robin moves on — nothing may be
    // queued for replay to a partition that never durably took the batch.
    bool any_routable = false;
    for (size_t k = 0; k < replicas_; ++k) {
      const Shard& s = *shards_[partition * replicas_ + k];
      if (s.alive.load(std::memory_order_acquire) &&
          !s.stale.load(std::memory_order_acquire)) {
        any_routable = true;
        break;
      }
    }
    if (!any_routable) continue;

    BatchInsertResult first_ok;
    bool any_ok = false;
    Status non_transient;
    bool has_non_transient = false;
    std::vector<Shard*> pend_replay;  // down or transiently failed siblings
    std::vector<Shard*> diverged;     // refused what a sibling applied
    for (size_t k = 0; k < replicas_; ++k) {
      Shard* shard = shards_[partition * replicas_ + k].get();
      if (shard->stale.load(std::memory_order_acquire)) continue;
      if (!shard->alive.load(std::memory_order_acquire)) {
        pend_replay.push_back(shard);
        continue;
      }
      BatchInsertResult result;
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        if (!shard->control.connected()) {
          result.status = shard->control.Connect(shard->endpoint.host,
                                                 shard->endpoint.port);
        }
        if (result.status.ok()) {
          result = shard->control.InsertBatch(table, docs);
        }
      }
      if (result.status.ok()) {
        if (!any_ok) {
          any_ok = true;
          first_ok = std::move(result);
        }
        continue;
      }
      if (IsTransient(result.status) ||
          result.status.IsDeadlineExceeded()) {
        last = result.status;
        rpc_failures_total_->Increment();
        NoteProbe(shard, false);
        pend_replay.push_back(shard);
      } else {
        // The shard is alive and answering but refused the batch (bad
        // table, parse error, ...).
        non_transient = result.status;
        has_non_transient = true;
        diverged.push_back(shard);
      }
    }
    if (any_ok) {
      // Committed: siblings that missed it catch up via replay; a sibling
      // that *refused* what another replica applied has diverged and can
      // no longer answer for this partition.
      for (Shard* shard : pend_replay) EnqueueReplay(shard, table, docs);
      for (Shard* shard : diverged) {
        MarkStale(shard, "refused a batch a sibling replica applied: " +
                             non_transient.ToString());
      }
      return first_ok;
    }
    if (has_non_transient) {
      // Every replica refused identically (or was down): the request
      // itself is bad. Report it; nothing was placed or queued.
      BatchInsertResult refused;
      refused.status = non_transient;
      return refused;
    }
    // All replicas transiently failed or were down — try the next
    // partition (the discarded pend_replay list must not be enqueued:
    // the batch was never placed here).
  }
  out.status = Status::Unavailable("no live shard accepted the batch: " +
                                   last.message());
  return out;
}

Status NetCoordinator::Checkpoint(const std::string& table) {
  // A checkpoint that skips a shard is not durable; require the full fleet.
  // Stale outranks down: a dead shard may come back and catch up, a stale
  // one is permanently behind until rebuilt.
  for (const auto& shard : shards_) {
    if (shard->stale.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "shard " + std::to_string(shard->index) +
          " is stale (missed inserts past the replay limit); its checkpoint "
          "would be incomplete — rebuild the replica first");
    }
    if (!shard->alive.load(std::memory_order_acquire)) {
      return Status::Unavailable("shard " + std::to_string(shard->index) +
                                 " is down; checkpoint would be partial");
    }
  }
  for (const auto& shard : shards_) {
    Status st;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (!shard->control.connected()) {
        st = shard->control.Connect(shard->endpoint.host,
                                    shard->endpoint.port);
      }
      if (st.ok()) st = shard->control.Checkpoint(table);
    }
    if (!st.ok()) {
      if (IsTransient(st)) NoteProbe(shard.get(), false);
      return Status(st.code(), "shard " + std::to_string(shard->index) +
                                   " checkpoint failed: " + st.message());
    }
  }
  return Status::OK();
}

}  // namespace storm
