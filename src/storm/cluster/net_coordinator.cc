#include "storm/cluster/net_coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "storm/obs/metrics.h"
#include "storm/query/parser.h"
#include "storm/util/logging.h"
#include "storm/util/rng.h"
#include "storm/util/stopwatch.h"

namespace storm {

namespace {

/// Per-shard view the fan-out threads write and the coordinating thread
/// merges. `q` is the shard's latest cardinality estimate (its stratum
/// weight); 0 means not yet known.
struct ShardSnap {
  bool started = false;      ///< delivered at least one PROGRESS or RESULT
  bool finished_ok = false;  ///< final RESULT decoded
  bool failed = false;       ///< connect/RPC failure; partials are dropped
  Status error;
  uint64_t samples = 0;
  ConfidenceInterval ci;
  double q = 0.0;
  bool q_exact = false;
  QueryResult result;  ///< valid when finished_ok
};

struct MergedView {
  int contributors = 0;  ///< snaps feeding the estimate
  int lost = 0;          ///< failed snaps + shards dead at fan-out
  ConfidenceInterval ci;
  uint64_t samples = 0;
  double q_total = 0.0;  ///< Σ q over contributors
  bool q_all_exact = false;
  double coverage = 1.0;
  bool degraded = false;
};

/// What a snapshot must be to contribute to the merge.
enum class MergeMode {
  /// Streaming: the latest PROGRESS of every live shard. Failed shards
  /// contribute nothing — their unmerged partials must not bias the
  /// estimate while survivors remain.
  kStreamed,
  /// Final assembly: the final RESULT fields of shards that finished.
  kFinal,
  /// Every shard is gone: the last streamed snapshot of every shard that
  /// ever reported, failed or not. This is the anytime best-so-far
  /// fallback — with no survivor left to renormalize over, the last-known
  /// partials are the answer (flagged degraded, coverage 0 by the caller).
  kLastKnown,
};

/// Stratified merge over disjoint partitions. `dead_at_fanout` counts
/// shards that never entered the fan-out (evicted beforehand).
MergedView MergeSnaps(const std::vector<ShardSnap>& snaps,
                      AggregateKind kind, int dead_at_fanout,
                      MergeMode mode) {
  const bool use_final = mode == MergeMode::kFinal;
  MergedView m;
  m.lost = dead_at_fanout;
  m.degraded = dead_at_fanout > 0;

  // Collect the contributing strata.
  struct Stratum {
    double est, hw, q;
    uint64_t samples;
    bool exact, q_known;
    double confidence;
  };
  std::vector<Stratum> strata;
  double q_known_sum = 0.0;
  int q_known_count = 0;
  double q_lost = 0.0;  ///< last-known weight of lost shards
  // Shards evicted before fan-out have no snapshot and never reported a
  // cardinality; they enter the coverage estimate at the imputed mean.
  int lost_unknown = dead_at_fanout;
  bool all_q_exact = true;
  for (const ShardSnap& s : snaps) {
    bool contributing;
    switch (mode) {
      case MergeMode::kFinal:
        contributing = s.finished_ok;
        break;
      case MergeMode::kStreamed:
        contributing = s.started && !s.failed;
        break;
      case MergeMode::kLastKnown:
        contributing = s.started;
        break;
    }
    if (s.q > 0.0) {
      q_known_sum += s.q;
      ++q_known_count;
    }
    if (!contributing) {
      ++m.lost;
      m.degraded = true;
      if (s.q > 0.0) {
        q_lost += s.q;
      } else {
        ++lost_unknown;
      }
      continue;
    }
    Stratum st;
    if (use_final) {
      st.est = s.result.ci.estimate;
      st.hw = s.result.ci.half_width;
      st.samples = s.result.samples;
      st.exact = s.result.ci.exact;
      st.confidence = s.result.ci.confidence;
      if (s.result.degraded) m.degraded = true;
    } else {
      st.est = s.ci.estimate;
      st.hw = s.ci.half_width;
      st.samples = s.samples;
      st.exact = s.ci.exact;
      st.confidence = s.ci.confidence;
    }
    st.q = s.q;
    st.q_known = s.q > 0.0;
    if (!s.q_exact) all_q_exact = false;
    strata.push_back(st);
    ++m.contributors;
  }
  if (m.contributors == 0) return m;

  // Weights: the shard's qualifying-record estimate q_i. Shards that have
  // not reported q yet get the mean of the known ones; with no q known at
  // all, samples drawn so far stand in (an early-stream approximation that
  // self-corrects as soon as cardinalities arrive).
  const double q_mean =
      q_known_count > 0 ? q_known_sum / q_known_count : 0.0;
  double weight_sum = 0.0;
  std::vector<double> weights(strata.size());
  for (size_t i = 0; i < strata.size(); ++i) {
    double w = strata[i].q_known ? strata[i].q : q_mean;
    if (w <= 0.0) w = static_cast<double>(strata[i].samples);
    if (w <= 0.0) w = 1.0;
    weights[i] = w;
    weight_sum += w;
    m.samples += strata[i].samples;
    m.q_total += strata[i].q_known ? strata[i].q : q_mean;
  }

  m.ci.confidence = strata[0].confidence;
  m.ci.samples = m.samples;
  switch (kind) {
    case AggregateKind::kAvg: {
      // Stratified mean over disjoint partitions: Σ w_i·μ_i / W with
      // variance Σ (w_i/W)²·hw_i² (same confidence z cancels, so half
      // widths combine directly).
      double est = 0.0, var = 0.0;
      bool exact = true;
      for (size_t i = 0; i < strata.size(); ++i) {
        const double f = weights[i] / weight_sum;
        est += f * strata[i].est;
        var += f * f * strata[i].hw * strata[i].hw;
        exact = exact && strata[i].exact;
      }
      m.ci.estimate = est;
      m.ci.half_width = std::sqrt(var);
      m.ci.exact = exact && m.lost == 0;
      break;
    }
    case AggregateKind::kSum:
    case AggregateKind::kCount: {
      // Partition totals add; shard estimators are independent, so the
      // half widths add in quadrature.
      double est = 0.0, var = 0.0;
      bool exact = true;
      for (const Stratum& st : strata) {
        est += st.est;
        var += st.hw * st.hw;
        exact = exact && st.exact;
      }
      m.ci.estimate = est;
      m.ci.half_width = std::sqrt(var);
      m.ci.exact = exact && m.lost == 0;
      break;
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      // Best-effort extremum of the shard extrema, like the single-node
      // estimator (sample extrema are biased; no CI).
      size_t pick = 0;
      for (size_t i = 1; i < strata.size(); ++i) {
        const bool better = kind == AggregateKind::kMin
                                ? strata[i].est < strata[pick].est
                                : strata[i].est > strata[pick].est;
        if (better) pick = i;
      }
      m.ci.estimate = strata[pick].est;
      m.ci.half_width = strata[pick].hw;
      m.ci.exact = strata[pick].exact && m.lost == 0;
      break;
    }
    default:
      break;  // guarded out by Execute before fan-out
  }
  m.q_all_exact = all_q_exact && m.lost == 0;

  // Coverage: reachable weight over total weight, with lost shards that
  // never reported a cardinality imputed at the mean of the known ones
  // (the in-process DistributedSampler scales unmeasured shards the same
  // way). With no cardinality known anywhere, fall back to shard counts.
  double lost_est = q_lost + lost_unknown * q_mean;
  if (m.lost > 0) {
    if (m.q_total + lost_est > 0.0) {
      m.coverage = m.q_total / (m.q_total + lost_est);
    } else {
      m.coverage = static_cast<double>(m.contributors) /
                   static_cast<double>(m.contributors + m.lost);
    }
  }
  return m;
}

bool AggregateSupported(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAvg:
    case AggregateKind::kSum:
    case AggregateKind::kCount:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return true;
    default:
      // VARIANCE/STDDEV need cross-shard moment pooling, not a weighted
      // mean of per-shard intervals; refuse rather than answer wrong.
      return false;
  }
}

}  // namespace

struct NetCoordinator::Shard {
  ShardEndpoint endpoint;
  size_t index = 0;
  /// Guards the control client and the failure streak (heartbeat thread,
  /// InsertBatch/Checkpoint callers). The alive flag is atomic so fan-out
  /// snapshots never block on a probe in flight.
  std::mutex mutex;
  RemoteClient control;
  int consecutive_failures = 0;
  std::atomic<bool> alive{true};
};

NetCoordinator::NetCoordinator(std::vector<ShardEndpoint> shards,
                               NetCoordinatorOptions options)
    : options_(options) {
  shards_.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = std::move(shards[i]);
    shard->index = i;
    shard->control.set_rpc_deadline_ms(options_.rpc_deadline_ms);
    shard->control.set_max_reconnect_attempts(1);
    shards_.push_back(std::move(shard));
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  queries_total_ = reg.GetCounter("storm_coord_queries_total",
                                  "Queries fanned out by the coordinator");
  rpc_failures_total_ =
      reg.GetCounter("storm_coord_shard_rpc_failures_total",
                     "Transient shard RPC failures (incl. dial retries)");
  evicted_total_ = reg.GetCounter(
      "storm_coord_shard_evicted_total",
      "Shards evicted after consecutive probe failures");
  readmitted_total_ = reg.GetCounter(
      "storm_coord_shard_readmitted_total",
      "Evicted shards readmitted after a successful probe");
  partials_dropped_total_ = reg.GetCounter(
      "storm_coord_partials_dropped_total",
      "Mid-stream shard failures whose partial estimates were discarded");
}

NetCoordinator::~NetCoordinator() { Stop(); }

Status NetCoordinator::Start() {
  if (shards_.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  if (running_.exchange(true)) return Status::OK();
  // One synchronous probe round so live_shards() is meaningful right away;
  // unreachable shards start their failure streak (a down fleet is a
  // degraded fleet, not a construction error).
  for (auto& shard : shards_) ProbeShard(shard.get());
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  return Status::OK();
}

void NetCoordinator::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->control.Close();
  }
}

int NetCoordinator::live_shards() const {
  int live = 0;
  for (const auto& shard : shards_) {
    if (shard->alive.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

bool NetCoordinator::shard_alive(size_t index) const {
  return index < shards_.size() &&
         shards_[index]->alive.load(std::memory_order_acquire);
}

void NetCoordinator::HeartbeatLoop() {
  while (running_.load(std::memory_order_acquire)) {
    for (auto& shard : shards_) {
      if (!running_.load(std::memory_order_acquire)) return;
      ProbeShard(shard.get());
    }
    std::unique_lock<std::mutex> lock(heartbeat_mutex_);
    heartbeat_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            options_.heartbeat_interval_ms),
        [this] { return !running_.load(std::memory_order_acquire); });
  }
}

void NetCoordinator::ProbeShard(Shard* shard) {
  bool ok;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // A probe is a liveness question, not work: cap it at the heartbeat
    // timeout, not the much larger RPC deadline — a silent-but-open shard
    // must not stall the heartbeat round (and everything queued on this
    // mutex) for rpc_deadline_ms per probe.
    if (options_.heartbeat_timeout_ms > 0.0) {
      shard->control.set_rpc_deadline_ms(options_.heartbeat_timeout_ms);
    }
    if (shard->control.connected()) {
      ok = shard->control.Ping().ok();
    } else {
      ok = shard->control
               .Connect(shard->endpoint.host, shard->endpoint.port)
               .ok();
    }
    shard->control.set_rpc_deadline_ms(options_.rpc_deadline_ms);
  }
  NoteProbe(shard, ok);
}

void NetCoordinator::NoteProbe(Shard* shard, bool ok) {
  std::lock_guard<std::mutex> lock(shard->mutex);
  if (ok) {
    shard->consecutive_failures = 0;
    if (!shard->alive.load(std::memory_order_acquire)) {
      shard->alive.store(true, std::memory_order_release);
      readmitted_total_->Increment();
      STORM_LOG(Info) << "coordinator: shard " << shard->index << " ("
                      << shard->endpoint.host << ":" << shard->endpoint.port
                      << ") readmitted";
    }
    return;
  }
  ++shard->consecutive_failures;
  if (shard->alive.load(std::memory_order_acquire) &&
      shard->consecutive_failures >= options_.failure_threshold) {
    shard->alive.store(false, std::memory_order_release);
    evicted_total_->Increment();
    STORM_LOG(Warn) << "coordinator: shard " << shard->index << " ("
                    << shard->endpoint.host << ":" << shard->endpoint.port
                    << ") evicted after " << shard->consecutive_failures
                    << " consecutive failures";
  }
}

Result<QueryResult> NetCoordinator::Execute(const std::string& query,
                                            const ExecOptions& options) {
  queries_total_->Increment();
  STORM_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(query));

  // Live snapshot for the fan-out; evicted shards are lost weight.
  std::vector<size_t> targets;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->alive.load(std::memory_order_acquire)) targets.push_back(i);
  }
  const int dead_at_fanout = static_cast<int>(shards_.size() - targets.size());
  if (targets.empty()) {
    return Status::Unavailable("no live shard: all " +
                               std::to_string(shards_.size()) +
                               " shards evicted");
  }

  if (ast.explain) {
    // Plan-only: no samples to merge — route to the first reachable live
    // shard on a dedicated socket, like the fan-out does. Holding
    // shard->mutex across a whole RPC would block heartbeats and
    // InsertBatch/Checkpoint on that shard for up to rpc_deadline_ms.
    Status last = Status::Unavailable("no live shard answered EXPLAIN");
    for (size_t index : targets) {
      Shard* shard = shards_[index].get();
      RemoteClient client;
      client.set_rpc_deadline_ms(options_.rpc_deadline_ms);
      client.set_max_reconnect_attempts(0);
      Status st = client.Connect(shard->endpoint.host, shard->endpoint.port);
      if (!st.ok()) {
        last = st;
        continue;
      }
      return client.Execute(query, options);
    }
    return last;
  }
  if (ast.task != QueryTask::kAggregate) {
    return Status::NotSupported(
        std::string("networked coordinator merges aggregate queries only; ") +
        std::string(QueryTaskToString(ast.task)) + " is not yet distributed");
  }
  if (!ast.group_by.empty() || ast.GroupByCell()) {
    return Status::NotSupported(
        "networked coordinator does not merge GROUP BY yet");
  }
  if (!AggregateSupported(ast.aggregate)) {
    return Status::NotSupported(
        std::string(AggregateKindToString(ast.aggregate)) +
        " is not mergeable across shards (needs moment pooling)");
  }

  // Retry-jitter seeding: per-shard AND per-query. A seed derived from the
  // shard index alone is identical on every query, so concurrent queries
  // would back off in lockstep and re-dial a recovering shard at the same
  // instants — exactly the thundering herd jitter exists to spread.
  const uint64_t jitter_nonce =
      options_.deterministic_retry_jitter
          ? 0
          : query_nonce_.fetch_add(1, std::memory_order_relaxed) + 1;

  Stopwatch watch;
  const double shard_deadline =
      options.deadline_ms > 0.0
          ? std::max(1.0, options.deadline_ms * options_.shard_deadline_fraction)
          : 0.0;

  struct FanoutState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<ShardSnap> snaps;
    int done = 0;
  };
  FanoutState state;
  state.snaps.resize(targets.size());
  std::vector<CancelToken> shard_cancels(targets.size());

  std::vector<std::thread> threads;
  threads.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    threads.emplace_back([&, t] {
      Shard* shard = shards_[targets[t]].get();
      // A fresh socket per (query, shard): sockets are cheap, and the
      // control connection must stay free for heartbeats.
      RemoteClient client;
      client.set_rpc_deadline_ms(options_.rpc_deadline_ms);
      client.set_max_reconnect_attempts(0);  // the dial policy owns retries
      Rng rng(options_.seed ^
              (0x9e3779b97f4a7c15ULL * (targets[t] + 1)) ^
              (0xda942042e4dd58b5ULL * jitter_nonce));
      RetryPolicy dial = options_.connect_retry;
      if (shard_deadline > 0.0 &&
          (dial.deadline_ms <= 0.0 || shard_deadline < dial.deadline_ms)) {
        dial.deadline_ms = shard_deadline;  // dialing can't eat the budget
      }
      Status connected = RetryWithBackoff(
          dial, &rng,
          [&] {
            return client.Connect(shard->endpoint.host, shard->endpoint.port);
          },
          rpc_failures_total_);
      if (!connected.ok()) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          ShardSnap& snap = state.snaps[t];
          snap.failed = true;
          snap.error = connected;
          ++state.done;
        }
        state.cv.notify_all();
        NoteProbe(shard, false);
        return;
      }

      ExecOptions shard_opts;
      shard_opts.parallelism = options.parallelism;
      shard_opts.deadline_ms = shard_deadline;
      shard_opts.profile = false;
      shard_opts.cancel = &shard_cancels[t];
      shard_opts.trace = options.trace;
      shard_opts.progress = [&state, t](const QueryProgress& p) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          ShardSnap& snap = state.snaps[t];
          snap.started = true;
          snap.samples = p.samples;
          snap.ci = p.ci;
          if (p.cardinality_estimate > 0.0) {
            snap.q = p.cardinality_estimate;
            snap.q_exact = p.cardinality_exact;
          }
        }
        state.cv.notify_all();
        return true;
      };

      Result<QueryResult> result = client.Execute(query, shard_opts);
      bool transient_failure = false;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        ShardSnap& snap = state.snaps[t];
        if (result.ok()) {
          snap.started = true;
          snap.finished_ok = true;
          snap.result = std::move(*result);
          snap.samples = snap.result.samples;
          snap.ci = snap.result.ci;
          if (snap.result.cardinality_estimate > 0.0) {
            snap.q = snap.result.cardinality_estimate;
            snap.q_exact = snap.result.cardinality_exact;
          }
        } else {
          if (snap.started) partials_dropped_total_->Increment();
          snap.failed = true;
          snap.error = result.status();
          transient_failure = IsTransient(result.status()) ||
                              result.status().IsDeadlineExceeded();
        }
        ++state.done;
      }
      state.cv.notify_all();
      if (result.ok()) {
        NoteProbe(shard, true);
      } else if (transient_failure) {
        rpc_failures_total_->Increment();
        NoteProbe(shard, false);
      }
    });
  }

  // Coordinating loop: wake on every shard event (or the merge cadence),
  // re-merge the latest snapshots, stream to the caller, honour cancel and
  // the query deadline. A failed shard's snapshot drops out of the merge
  // entirely — its partials must not bias the survivors — and the weights
  // renormalize implicitly because MergeSnaps sums only the contributors.
  bool cancelled = false;
  bool deadline_hit = false;
  auto fire_cancels = [&] {
    for (CancelToken& token : shard_cancels) token.Cancel();
  };
  while (true) {
    std::vector<ShardSnap> snapshot;
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      if (state.done >= static_cast<int>(targets.size())) break;
      state.cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                                  options_.merge_interval_ms));
      snapshot = state.snaps;  // copy: merge + callback run unlocked
    }
    if (options.cancel != nullptr && options.cancel->IsCancelled() &&
        !cancelled) {
      cancelled = true;
      fire_cancels();
    }
    if (!deadline_hit && options.deadline_ms > 0.0 &&
        watch.ElapsedMillis() >= options.deadline_ms) {
      deadline_hit = true;
      fire_cancels();
    }
    if (options.progress) {
      MergedView m = MergeSnaps(snapshot, ast.aggregate, dead_at_fanout,
                                MergeMode::kStreamed);
      if (m.contributors > 0) {
        QueryProgress p;
        p.samples = m.samples;
        p.elapsed_ms = watch.ElapsedMillis();
        p.ci = m.ci;
        p.cardinality_estimate = m.q_total;
        p.cardinality_exact = m.q_all_exact;
        if (!options.progress(p) && !cancelled) {
          cancelled = true;
          fire_cancels();
        }
      }
    }
  }
  for (std::thread& thread : threads) thread.join();

  // Final assembly from the shards' final RESULTs only (a shard that died
  // mid-stream contributed nothing).
  const std::vector<ShardSnap>& snaps = state.snaps;
  int finished = 0;
  bool any_started = false;
  for (const ShardSnap& s : snaps) {
    if (s.finished_ok) ++finished;
    if (s.started) any_started = true;
  }

  if (finished == 0) {
    if (!any_started) {
      // Nothing ever arrived. Prefer a non-transient shard error (a bad
      // query fails identically everywhere) over a generic unreachable.
      for (const ShardSnap& s : snaps) {
        if (s.failed && !IsTransient(s.error) &&
            !s.error.IsDeadlineExceeded()) {
          return s.error;
        }
      }
      return Status::Unavailable(
          "all " + std::to_string(targets.size()) +
          " live shards failed before producing any estimate");
    }
    // Every shard died mid-stream. With no survivor to renormalize over,
    // the anytime contract still owes the caller its best-so-far: the
    // last-known partials of every shard that ever streamed (kLastKnown —
    // the streamed mode would exclude the failed snaps and merge nothing),
    // flagged unmistakably (degraded, coverage 0).
    MergedView m = MergeSnaps(snaps, ast.aggregate, dead_at_fanout,
                              MergeMode::kLastKnown);
    QueryResult out;
    out.task = ast.task;
    out.ci = m.ci;
    out.samples = m.samples;
    out.elapsed_ms = watch.ElapsedMillis();
    out.degraded = true;
    out.coverage = 0.0;
    out.cancelled = cancelled;
    out.deadline_exceeded = deadline_hit;
    out.strategy = "net_coordinator(0/" + std::to_string(shards_.size()) +
                   " shards; last-known partials)";
    out.decision.strategy = SamplerStrategy::kDistributed;
    out.decision.reason =
        "all shards lost mid-query; result is the last streamed partial "
        "merge and may be biased";
    out.cardinality_estimate = m.q_total;
    return out;
  }

  MergedView m =
      MergeSnaps(snaps, ast.aggregate, dead_at_fanout, MergeMode::kFinal);
  QueryResult out;
  out.task = ast.task;
  out.ci = m.ci;
  out.samples = m.samples;
  out.elapsed_ms = watch.ElapsedMillis();
  out.cancelled = cancelled;
  bool all_exhausted = true;
  bool any_shard_deadline = false;
  for (const ShardSnap& s : snaps) {
    if (s.finished_ok) {
      all_exhausted = all_exhausted && s.result.exhausted;
      any_shard_deadline = any_shard_deadline || s.result.deadline_exceeded;
    } else {
      all_exhausted = false;
    }
  }
  out.exhausted = all_exhausted && m.lost == 0;
  out.deadline_exceeded = deadline_hit || any_shard_deadline;
  out.degraded = m.degraded;
  out.coverage = m.coverage;
  out.cardinality_estimate = m.q_total;
  out.cardinality_exact = m.q_all_exact;
  out.strategy = "net_coordinator(" + std::to_string(finished) + "/" +
                 std::to_string(shards_.size()) + " shards)";
  out.decision.strategy = SamplerStrategy::kDistributed;
  out.decision.estimated_cardinality = m.q_total;
  out.decision.reason =
      m.lost == 0
          ? "fan-out over " + std::to_string(finished) + " shards"
          : "fan-out degraded: " + std::to_string(m.lost) + " of " +
                std::to_string(shards_.size()) +
                " shards lost; weights renormalized over survivors";
  return out;
}

BatchInsertResult NetCoordinator::InsertBatch(const std::string& table,
                                              const std::vector<Value>& docs) {
  BatchInsertResult out;
  const size_t n = shards_.size();
  Status last = Status::Unavailable("no live shard");
  for (size_t attempt = 0; attempt < n; ++attempt) {
    const size_t index = next_insert_shard_.fetch_add(1) % n;
    Shard* shard = shards_[index].get();
    if (!shard->alive.load(std::memory_order_acquire)) continue;
    BatchInsertResult result;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (!shard->control.connected()) {
        Status dialed =
            shard->control.Connect(shard->endpoint.host, shard->endpoint.port);
        if (!dialed.ok()) {
          last = dialed;
          result.status = dialed;
        }
      }
      if (result.status.ok()) {
        result = shard->control.InsertBatch(table, docs);
      }
    }
    if (result.status.ok() || !IsTransient(result.status)) {
      // Non-transient failures (bad table, parse error) mean the shard is
      // alive and answering; report them without touching its health.
      return result;
    }
    last = result.status;
    rpc_failures_total_->Increment();
    NoteProbe(shard, false);
  }
  out.status = Status::Unavailable("no live shard accepted the batch: " +
                                   last.message());
  return out;
}

Status NetCoordinator::Checkpoint(const std::string& table) {
  // A checkpoint that skips a shard is not durable; require the full fleet.
  for (const auto& shard : shards_) {
    if (!shard->alive.load(std::memory_order_acquire)) {
      return Status::Unavailable("shard " + std::to_string(shard->index) +
                                 " is down; checkpoint would be partial");
    }
  }
  for (const auto& shard : shards_) {
    Status st;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (!shard->control.connected()) {
        st = shard->control.Connect(shard->endpoint.host,
                                    shard->endpoint.port);
      }
      if (st.ok()) st = shard->control.Checkpoint(table);
    }
    if (!st.ok()) {
      if (IsTransient(st)) NoteProbe(shard.get(), false);
      return Status(st.code(), "shard " + std::to_string(shard->index) +
                                   " checkpoint failed: " + st.message());
    }
  }
  return Status::OK();
}

}  // namespace storm
