// Cluster: the simulated distributed STORM deployment — a partitioner that
// routes records to shards and a coordinator whose DistributedSampler
// merges per-shard online samples into one uniform stream.
//
// Merging is exact, not heuristic: at Begin the coordinator asks every
// shard for its exact in-query count q_i (a cheap range-count "plan"
// round-trip); Next() then picks shard i with probability q_i / Σq_j and
// forwards the draw. Because partitions are disjoint, a qualifying record
// on shard i is returned with probability (q_i/q)·(1/q_i) = 1/q — uniform
// over the whole cluster.
//
// Fault handling: every shard call is wrapped in retry/backoff with a
// per-shard deadline. A shard that stays unreachable is evicted — its q_i
// leaves the weight vector, so the merged stream renormalizes and remains
// exactly uniform over the *live* partition — and the stream is marked
// degraded with an estimated coverage fraction q_alive/q. Anytime answers
// over survivors beat no answer at all (docs/ROBUSTNESS.md).

#ifndef STORM_CLUSTER_COORDINATOR_H_
#define STORM_CLUSTER_COORDINATOR_H_

#include <memory>
#include <vector>

#include "storm/cluster/shard.h"
#include "storm/geo/hilbert.h"
#include "storm/sampling/options.h"
#include "storm/util/retry.h"

namespace storm {

/// How records are routed to shards.
enum class Partitioning {
  /// Record-id hash: spatially uniform load, queries touch all shards.
  kHash,
  /// Contiguous ranges of the Hilbert order: spatial locality, queries
  /// touch few shards (the distributed Hilbert R-tree layout of §3.1).
  kHilbertRange,
};

/// The coordinator's fault-handling knobs (retry/deadline per shard call,
/// private shard-local sample buffers) now live in the consolidated
/// SamplingOptions; this alias keeps one release of source compatibility.
using DistributedSamplerOptions = SamplingOptions;

class Cluster {
 public:
  using Entry = RTree<3>::Entry;

  Cluster(std::vector<Entry> entries, int num_shards, Partitioning partitioning,
          RsTreeOptions options, uint64_t seed);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Shard& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }
  /// Mutable access for fault controls (Kill/Revive/SetLatencyMs).
  Shard* mutable_shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  uint64_t size() const;

  /// Which shard a record routes to.
  int RouteOf(const Point3& p, RecordId id) const;

  /// Cluster-wide updates, routed by the partitioner.
  void Insert(const Point3& p, RecordId id);
  bool Erase(const Point3& p, RecordId id);

  /// A uniform sampler over the union of all shards.
  std::unique_ptr<SpatialSampler<3>> NewSampler(
      Rng rng, DistributedSamplerOptions options = {}) const;

  /// Exact distributed range count (fans out to all shards). kUnavailable
  /// when any shard is down — an exact count cannot be served degraded.
  Result<uint64_t> Count(const Rect3& query) const;

  /// Shards whose partition intersects the query (locality diagnostic for
  /// the partitioning ablation).
  int ShardsTouched(const Rect3& query) const;

 private:
  Partitioning partitioning_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<HilbertMapper<3>> mapper_;      // kHilbertRange only
  std::vector<uint64_t> range_splits_;            // kHilbertRange boundaries
};

}  // namespace storm

#endif  // STORM_CLUSTER_COORDINATOR_H_
