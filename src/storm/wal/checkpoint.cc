#include "storm/wal/checkpoint.h"

#include <cstring>

#include "storm/util/crc32.h"
#include "storm/wal/codec.h"
#include "storm/wal/page_chain.h"

namespace storm {

namespace {

constexpr uint32_t kCheckpointMagic = 0x43'4B'50'54;  // "CKPT"
constexpr uint32_t kCheckpointVersion = 1;

std::string EncodeBlob(const TableCheckpoint& ckpt) {
  ByteWriter w;
  w.PutU32(kCheckpointVersion);
  w.PutString(ckpt.table_name);
  w.PutString(ckpt.binding.x_field);
  w.PutString(ckpt.binding.y_field);
  w.PutString(ckpt.binding.t_field);
  w.PutU64(ckpt.seed);
  w.PutU8(ckpt.build_ls_tree ? 1 : 0);
  w.PutU32(ckpt.num_shards);
  w.PutU8(ckpt.partitioning);
  w.PutU32(ckpt.rs_max_entries);
  w.PutU32(ckpt.rs_min_entries);
  w.PutU64(ckpt.rs_buffer_size);
  w.PutU8(ckpt.rs_prefill ? 1 : 0);
  w.PutDouble(ckpt.ls_level_ratio);
  w.PutU64(ckpt.ls_min_level_size);
  w.PutU32(ckpt.ls_max_entries);
  w.PutU32(ckpt.ls_min_entries);
  w.PutU64(ckpt.pool_pages);
  w.PutU64(ckpt.next_lsn);
  w.PutU64(ckpt.store.live_records);
  w.PutU64(ckpt.store.current_page);
  w.PutU64(ckpt.store.current_offset);
  w.PutU64(ckpt.store.directory.size());
  for (const RecordStore::Location& loc : ckpt.store.directory) {
    w.PutU64(loc.page);
    w.PutU32(loc.offset);
    w.PutU32(loc.length);
    w.PutU8(loc.live ? 1 : 0);
  }
  return w.Take();
}

Result<TableCheckpoint> DecodeBlob(std::string_view blob) {
  ByteReader r(blob);
  STORM_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  TableCheckpoint ckpt;
  STORM_ASSIGN_OR_RETURN(ckpt.table_name, r.GetString());
  STORM_ASSIGN_OR_RETURN(ckpt.binding.x_field, r.GetString());
  STORM_ASSIGN_OR_RETURN(ckpt.binding.y_field, r.GetString());
  STORM_ASSIGN_OR_RETURN(ckpt.binding.t_field, r.GetString());
  STORM_ASSIGN_OR_RETURN(ckpt.seed, r.GetU64());
  STORM_ASSIGN_OR_RETURN(uint8_t build_ls, r.GetU8());
  ckpt.build_ls_tree = build_ls != 0;
  STORM_ASSIGN_OR_RETURN(ckpt.num_shards, r.GetU32());
  STORM_ASSIGN_OR_RETURN(ckpt.partitioning, r.GetU8());
  STORM_ASSIGN_OR_RETURN(ckpt.rs_max_entries, r.GetU32());
  STORM_ASSIGN_OR_RETURN(ckpt.rs_min_entries, r.GetU32());
  STORM_ASSIGN_OR_RETURN(ckpt.rs_buffer_size, r.GetU64());
  STORM_ASSIGN_OR_RETURN(uint8_t prefill, r.GetU8());
  ckpt.rs_prefill = prefill != 0;
  STORM_ASSIGN_OR_RETURN(ckpt.ls_level_ratio, r.GetDouble());
  STORM_ASSIGN_OR_RETURN(ckpt.ls_min_level_size, r.GetU64());
  STORM_ASSIGN_OR_RETURN(ckpt.ls_max_entries, r.GetU32());
  STORM_ASSIGN_OR_RETURN(ckpt.ls_min_entries, r.GetU32());
  STORM_ASSIGN_OR_RETURN(ckpt.pool_pages, r.GetU64());
  STORM_ASSIGN_OR_RETURN(ckpt.next_lsn, r.GetU64());
  STORM_ASSIGN_OR_RETURN(ckpt.store.live_records, r.GetU64());
  STORM_ASSIGN_OR_RETURN(ckpt.store.current_page, r.GetU64());
  STORM_ASSIGN_OR_RETURN(ckpt.store.current_offset, r.GetU64());
  STORM_ASSIGN_OR_RETURN(uint64_t entries, r.GetU64());
  ckpt.store.directory.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    RecordStore::Location loc;
    STORM_ASSIGN_OR_RETURN(loc.page, r.GetU64());
    STORM_ASSIGN_OR_RETURN(loc.offset, r.GetU32());
    STORM_ASSIGN_OR_RETURN(loc.length, r.GetU32());
    STORM_ASSIGN_OR_RETURN(uint8_t live, r.GetU8());
    loc.live = live != 0;
    ckpt.store.directory.push_back(loc);
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after checkpoint blob");
  }
  return ckpt;
}

}  // namespace

Result<PageId> WriteCheckpoint(BlockManager* disk, const TableCheckpoint& ckpt) {
  std::string blob = EncodeBlob(ckpt);
  uint32_t crc = Crc32(blob.data(), blob.size());
  PageChainWriter writer(disk, kCheckpointMagic);
  STORM_RETURN_NOT_OK(writer.Open());
  uint64_t size = blob.size();
  STORM_RETURN_NOT_OK(writer.Append(&size, sizeof(size)));
  STORM_RETURN_NOT_OK(writer.Append(blob.data(), blob.size()));
  STORM_RETURN_NOT_OK(writer.Append(&crc, sizeof(crc)));
  STORM_RETURN_NOT_OK(writer.SyncAppended());
  return writer.first_page();
}

Result<TableCheckpoint> ReadCheckpoint(BlockManager* disk, PageId first_page) {
  STORM_ASSIGN_OR_RETURN(PageChainContents chain,
                         ReadPageChain(disk, first_page, kCheckpointMagic));
  // A checkpoint is fully synced before the superblock references it; a
  // short chain here is real damage, not a torn tail.
  if (chain.bytes.size() < sizeof(uint64_t)) {
    return Status::Corruption("checkpoint chain too short for size frame");
  }
  uint64_t size = 0;
  std::memcpy(&size, chain.bytes.data(), sizeof(size));
  if (sizeof(uint64_t) + size + sizeof(uint32_t) > chain.bytes.size()) {
    return Status::Corruption("checkpoint blob truncated (" +
                              std::to_string(size) + " bytes expected)");
  }
  std::string_view blob(chain.bytes.data() + sizeof(uint64_t), size);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, chain.bytes.data() + sizeof(uint64_t) + size,
              sizeof(stored_crc));
  if (Crc32(blob.data(), blob.size()) != stored_crc) {
    return Status::Corruption("checkpoint blob CRC mismatch");
  }
  return DecodeBlob(blob);
}

Status FreeCheckpointChain(BlockManager* disk, PageId first_page) {
  return FreePageChain(disk, first_page, kCheckpointMagic);
}

}  // namespace storm
