#include "storm/wal/wal.h"

#include <cstring>

#include "storm/obs/flight_recorder.h"
#include "storm/obs/metrics.h"
#include "storm/util/crc32.h"
#include "storm/util/failpoint.h"
#include "storm/wal/codec.h"

namespace storm {

namespace {

constexpr uint32_t kWalMagic = 0x57'4C'4F'47;  // "WLOG"
// Frame header preceding the CRC-covered bytes: [len u32][crc u32].
constexpr size_t kFrameHeaderSize = 8;

Counter* AppendsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_wal_appends_total", "WAL records appended");
  return c;
}

Counter* BytesCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_wal_bytes_total", "WAL bytes appended (frames incl. headers)");
  return c;
}

Counter* SyncsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "storm_wal_syncs_total", "WAL group-commit syncs");
  return c;
}

}  // namespace

Wal::Wal(BlockManager* disk, Lsn next_lsn)
    : writer_(disk, kWalMagic),
      next_lsn_(next_lsn == kInvalidLsn ? 1 : next_lsn) {}

Result<std::unique_ptr<Wal>> Wal::Create(BlockManager* disk, Lsn next_lsn) {
  std::unique_ptr<Wal> wal(new Wal(disk, next_lsn));
  STORM_RETURN_NOT_OK(wal->writer_.Open());
  STORM_RETURN_NOT_OK(wal->writer_.SyncAppended());
  return wal;
}

Result<Lsn> Wal::AppendFrame(WalRecordType type, std::string_view payload) {
  STORM_FAILPOINT(kFailpointWalAppend);
  // Build [len][crc][type][lsn][payload] as one buffer so the page-chain
  // writer touches each disk page once per record, not once per field.
  ByteWriter buf;
  buf.PutU32(0);  // len, patched below
  buf.PutU32(0);  // crc, patched below
  buf.PutU8(static_cast<uint8_t>(type));
  buf.PutU64(next_lsn_);
  buf.PutRaw(payload.data(), payload.size());
  const uint32_t len = static_cast<uint32_t>(buf.size() - kFrameHeaderSize);
  const uint32_t crc =
      Crc32(buf.data().data() + kFrameHeaderSize, len);
  std::string bytes = buf.Take();
  std::memcpy(bytes.data(), &len, sizeof(len));
  std::memcpy(bytes.data() + 4, &crc, sizeof(crc));
  STORM_RETURN_NOT_OK(writer_.Append(bytes.data(), bytes.size()));
  AppendsCounter()->Increment();
  BytesCounter()->Increment(bytes.size());
  ++appended_records_;
  Lsn lsn = next_lsn_++;
  // The frame is in the page cache but not yet durable: the mid-append
  // crash window the recovery harness aims at.
  STORM_FAILPOINT(kFailpointWalAppendPartial);
  return lsn;
}

Result<Lsn> Wal::AppendInsert(RecordId id, std::string_view doc_json) {
  ByteWriter body;
  body.PutU64(id);
  body.PutString(doc_json);
  return AppendFrame(WalRecordType::kInsert, body.data());
}

Result<Lsn> Wal::AppendBatchInsert(RecordId first_id,
                                   const std::vector<std::string>& docs) {
  ByteWriter body;
  body.PutU64(first_id);
  body.PutU32(static_cast<uint32_t>(docs.size()));
  for (const std::string& doc : docs) body.PutString(doc);
  return AppendFrame(WalRecordType::kBatchInsert, body.data());
}

Result<Lsn> Wal::AppendDelete(RecordId id) {
  ByteWriter body;
  body.PutU64(id);
  return AppendFrame(WalRecordType::kDelete, body.data());
}

Status Wal::Sync() {
  STORM_RETURN_NOT_OK(writer_.SyncAppended());
  SyncsCounter()->Increment();
  FlightRecord(FlightEvent::kWalSync, appended_records_);
  return Status::OK();
}

Result<WalReplay> Wal::Replay(BlockManager* disk, PageId first_page) {
  WalReplay out;
  if (first_page == kInvalidPage) return out;  // no WAL yet: empty replay
  STORM_ASSIGN_OR_RETURN(PageChainContents chain,
                         ReadPageChain(disk, first_page, kWalMagic));
  out.torn_tail = chain.truncated_tail;
  const std::string& bytes = chain.bytes;
  size_t pos = 0;
  Lsn expected = kInvalidLsn;  // set from the first frame
  while (pos + kFrameHeaderSize <= bytes.size()) {
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + pos + 4, sizeof(crc));
    if (len == 0) break;  // clean end-of-log mark
    if (pos + kFrameHeaderSize + len > bytes.size() ||
        Crc32(reinterpret_cast<const std::byte*>(bytes.data()) + pos +
                  kFrameHeaderSize,
              len) != crc) {
      // A frame that ran past the persisted bytes or fails its CRC is the
      // torn tail of an unacknowledged append: stop, don't fail.
      out.torn_tail = true;
      break;
    }
    ByteReader r(std::string_view(bytes).substr(pos + kFrameHeaderSize, len));
    STORM_ASSIGN_OR_RETURN(uint8_t raw_type, r.GetU8());
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(raw_type);
    STORM_ASSIGN_OR_RETURN(rec.lsn, r.GetU64());
    if (expected != kInvalidLsn && rec.lsn != expected) {
      return Status::Corruption("WAL LSN sequence broken: expected " +
                                std::to_string(expected) + ", found " +
                                std::to_string(rec.lsn));
    }
    switch (rec.type) {
      case WalRecordType::kInsert: {
        STORM_ASSIGN_OR_RETURN(rec.first_id, r.GetU64());
        STORM_ASSIGN_OR_RETURN(std::string doc, r.GetString());
        rec.docs.push_back(std::move(doc));
        break;
      }
      case WalRecordType::kBatchInsert: {
        STORM_ASSIGN_OR_RETURN(rec.first_id, r.GetU64());
        STORM_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
        rec.docs.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          STORM_ASSIGN_OR_RETURN(std::string doc, r.GetString());
          rec.docs.push_back(std::move(doc));
        }
        break;
      }
      case WalRecordType::kDelete: {
        STORM_ASSIGN_OR_RETURN(rec.first_id, r.GetU64());
        break;
      }
      default:
        return Status::Corruption("unknown WAL record type " +
                                  std::to_string(raw_type) + " at LSN " +
                                  std::to_string(rec.lsn));
    }
    if (r.remaining() != 0) {
      return Status::Corruption("trailing bytes in WAL frame at LSN " +
                                std::to_string(rec.lsn));
    }
    expected = rec.lsn + 1;
    out.records.push_back(std::move(rec));
    pos += kFrameHeaderSize + len;
  }
  out.next_lsn = out.records.empty() ? 1 : out.records.back().lsn + 1;
  return out;
}

Status Wal::FreeChain(BlockManager* disk, PageId first_page) {
  return FreePageChain(disk, first_page, kWalMagic);
}

}  // namespace storm
