// Checkpoint blobs: a durable snapshot of a table's metadata.
//
// A checkpoint persists everything a Table cannot re-derive from the raw
// pages alone: the record store's directory and append cursor, the
// coordinate binding, the index-configuration knobs, and the WAL LSN to
// continue from. Documents themselves are NOT copied — they already live in
// the record store's pages, which the checkpoint protocol syncs before the
// blob is written. Recovery reads the blob, restores the store state over
// the shared disk, re-scans the live documents, and bulk-loads the indexes
// (rebuilding the RS-/LS-trees is cheap relative to re-importing and keeps
// the blob small and stable).
//
// On disk a checkpoint is a 'CKPT' page chain holding
//   [u64 blob_size][blob bytes][u32 crc-of-blob]
// and is immutable once the superblock points at it.

#ifndef STORM_WAL_CHECKPOINT_H_
#define STORM_WAL_CHECKPOINT_H_

#include <string>

#include "storm/connector/schema_discovery.h"
#include "storm/storage/record_store.h"
#include "storm/wal/wal.h"

namespace storm {

/// Failpoint site evaluated at Table::Checkpoint entry ("nothing written
/// yet") — the partial-checkpoint window lives in Table::Checkpoint itself.
inline constexpr std::string_view kFailpointCheckpoint = "table.checkpoint";
/// Evaluated after the blob + fresh WAL are written but before the
/// superblock flip: a crash here must fall back to the previous checkpoint.
inline constexpr std::string_view kFailpointCheckpointPartial =
    "table.checkpoint.partial";

/// Everything a table checkpoint persists. Kept flat (no TableConfig
/// dependency) so the wal layer stays below the query layer; Table converts
/// to/from its own config.
struct TableCheckpoint {
  std::string table_name;
  SpatioTemporalBinding binding;

  // Index/config knobs needed to rebuild the table identically.
  uint64_t seed = 0;
  bool build_ls_tree = true;
  uint32_t num_shards = 1;
  uint8_t partitioning = 0;
  uint32_t rs_max_entries = 64;
  uint32_t rs_min_entries = 0;
  uint64_t rs_buffer_size = 0;
  bool rs_prefill = false;
  double ls_level_ratio = 0.5;
  uint64_t ls_min_level_size = 256;
  uint32_t ls_max_entries = 64;
  uint32_t ls_min_entries = 0;
  uint64_t pool_pages = 1024;

  /// LSN the post-checkpoint WAL continues from.
  Lsn next_lsn = 1;

  /// Record store directory + append cursor at checkpoint time.
  RecordStore::State store;
};

/// Serializes the checkpoint into a fresh 'CKPT' page chain and syncs it.
/// Returns the chain's first page (to be installed in the superblock).
Result<PageId> WriteCheckpoint(BlockManager* disk, const TableCheckpoint& ckpt);

/// Reads and validates (size frame + CRC) the checkpoint at `first_page`.
Result<TableCheckpoint> ReadCheckpoint(BlockManager* disk, PageId first_page);

/// Frees a superseded checkpoint chain.
Status FreeCheckpointChain(BlockManager* disk, PageId first_page);

}  // namespace storm

#endif  // STORM_WAL_CHECKPOINT_H_
