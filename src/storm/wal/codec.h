// Little-endian binary codec for the durability layer's on-disk structures
// (WAL frames, checkpoint blobs, the superblock). Header-only: a byte-vector
// writer and a bounds-checked cursor reader.

#ifndef STORM_WAL_CODEC_H_
#define STORM_WAL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "storm/util/result.h"

namespace storm {

/// Appends fixed-width little-endian integers and length-prefixed strings to
/// a byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void PutRaw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* v, size_t n) {
    // All supported targets are little-endian; memcpy keeps it UB-free.
    char tmp[8];
    std::memcpy(tmp, v, n);
    buf_.append(tmp, n);
  }

  std::string buf_;
};

/// Bounds-checked sequential reader over an encoded buffer. Every getter
/// returns kCorruption on underrun instead of reading past the end — a
/// truncated or torn structure must fail loudly, never return garbage.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    STORM_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() { return GetFixed<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>(); }
  Result<double> GetDouble() { return GetFixed<double>(); }
  Result<std::string> GetString() {
    STORM_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    STORM_RETURN_NOT_OK(Need(n));
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> GetFixed() {
    STORM_RETURN_NOT_OK(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Status Need(size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::Corruption("encoded structure truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace storm

#endif  // STORM_WAL_CODEC_H_
