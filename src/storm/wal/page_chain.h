// Page chains: a byte stream laid over linked disk pages.
//
// Both the WAL and checkpoint blobs need "a file" on the simulated disk, but
// BlockManager only deals in fixed pages. A chain page is
//   [magic u32][reserved u32][next PageId u64][payload ...]
// and the writer links pages as the stream grows. The reader concatenates
// payloads in order; chain ends at next == kInvalidPage. Content framing
// (record CRCs, blob CRCs) is the caller's job — the chain itself only
// guarantees page-level integrity via BlockManager checksums.

#ifndef STORM_WAL_PAGE_CHAIN_H_
#define STORM_WAL_PAGE_CHAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storm/io/block_manager.h"
#include "storm/util/result.h"

namespace storm {

/// Bytes of the per-page chain header.
inline constexpr size_t kPageChainHeaderSize = 16;

/// Appends a byte stream over freshly allocated, linked pages. Every Append
/// writes the touched pages back to the disk (volatile until synced);
/// SyncAppended() makes the pages written since the last sync durable.
class PageChainWriter {
 public:
  /// `magic` tags every page of this chain (e.g. 'WLOG', 'CKPT').
  PageChainWriter(BlockManager* disk, uint32_t magic);

  /// Allocates and writes the first page. Must be called once before Append.
  Status Open();

  Status Append(const void* data, size_t n);

  /// Per-page "fdatasync" of everything appended since the last call — the
  /// WAL's group-commit primitive.
  Status SyncAppended();

  PageId first_page() const { return first_page_; }
  /// Every page of the chain, in order (for truncation bookkeeping).
  const std::vector<PageId>& pages() const { return pages_; }
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  Status WriteCurrent();
  Status RollToNewPage();

  BlockManager* disk_;
  uint32_t magic_;
  PageId first_page_ = kInvalidPage;
  PageId current_page_ = kInvalidPage;
  std::vector<std::byte> image_;  // current page image (header + payload)
  size_t offset_ = 0;             // payload bytes used in the current page
  std::vector<PageId> pages_;
  std::vector<PageId> dirty_;  // pages written since the last SyncAppended
  uint64_t bytes_appended_ = 0;
};

/// Result of walking a chain.
struct PageChainContents {
  /// Concatenated payload bytes of every reachable page. The tail is
  /// zero-padded (pages are zeroed at allocation); stream framing decides
  /// where content ends.
  std::string bytes;
  std::vector<PageId> pages;
  /// True when the chain ended because a linked page was unreadable (its
  /// tail was discarded by a crash before the link was durable) rather than
  /// by a clean next == kInvalidPage. The bytes read up to that point are
  /// still valid.
  bool truncated_tail = false;
};

/// Reads a chain starting at `first_page`, verifying the magic of every
/// page. Page checksum mismatches propagate as kCorruption; an unreadable
/// *linked* page (non-live after crash rollback) terminates the walk with
/// `truncated_tail` instead, because an in-flight chain extension that never
/// synced is a torn tail, not corruption.
Result<PageChainContents> ReadPageChain(BlockManager* disk, PageId first_page,
                                        uint32_t magic);

/// Frees every page of the chain rooted at `first_page`. Unreadable tail
/// pages stop the walk (they were never durably linked). Best effort:
/// returns the first error from a live-page free.
Status FreePageChain(BlockManager* disk, PageId first_page, uint32_t magic);

}  // namespace storm

#endif  // STORM_WAL_PAGE_CHAIN_H_
