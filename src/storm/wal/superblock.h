// Superblock: page 0 of a durable STORM disk — the single root from which
// recovery finds everything else.
//
//   [magic u32][version u32][checkpoint_first u64][wal_first u64][crc u32]
//
// The superblock is the atomicity hinge of checkpointing: a checkpoint
// writes its blob and the fresh WAL chain first, syncs them, and only then
// rewrites + syncs this one page. A crash at any earlier point leaves the
// previous superblock (and so the previous checkpoint + WAL) intact.

#ifndef STORM_WAL_SUPERBLOCK_H_
#define STORM_WAL_SUPERBLOCK_H_

#include "storm/io/block_manager.h"
#include "storm/util/result.h"

namespace storm {

struct Superblock {
  /// First page of the latest complete checkpoint chain; kInvalidPage until
  /// the first checkpoint lands.
  PageId checkpoint_first = kInvalidPage;
  /// First page of the live WAL chain; kInvalidPage before the first WAL.
  PageId wal_first = kInvalidPage;
};

/// Initializes a fresh disk for durability: allocates page 0 and writes an
/// empty superblock, synced. Fails unless the disk has no pages yet (the
/// superblock must be page 0 by convention).
Status FormatDisk(BlockManager* disk);

/// Reads and validates page 0. kCorruption for a bad magic/CRC; useful both
/// for recovery and for detecting "this disk was never formatted".
Result<Superblock> ReadSuperblock(BlockManager* disk);

/// Atomically (single page write + sync) replaces the superblock.
Status WriteSuperblock(BlockManager* disk, const Superblock& sb);

}  // namespace storm

#endif  // STORM_WAL_SUPERBLOCK_H_
