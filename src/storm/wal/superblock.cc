#include "storm/wal/superblock.h"

#include <cstring>

#include "storm/util/crc32.h"
#include "storm/wal/codec.h"

namespace storm {

namespace {

constexpr uint32_t kSuperblockMagic = 0x53'54'52'4D;  // "STRM"
constexpr uint32_t kSuperblockVersion = 1;
constexpr PageId kSuperblockPage = 0;
constexpr size_t kEncodedSize = 4 + 4 + 8 + 8 + 4;

}  // namespace

Status FormatDisk(BlockManager* disk) {
  if (disk->num_pages() != 0) {
    return Status::FailedPrecondition(
        "durability format requires a fresh disk (" +
        std::to_string(disk->num_pages()) + " pages already allocated)");
  }
  if (disk->page_size() < kEncodedSize) {
    return Status::InvalidArgument("page size too small for a superblock");
  }
  PageId id = disk->Allocate();
  if (id != kSuperblockPage) {
    return Status::Unknown("superblock landed on page " + std::to_string(id));
  }
  return WriteSuperblock(disk, Superblock{});
}

Result<Superblock> ReadSuperblock(BlockManager* disk) {
  if (!disk->IsLive(kSuperblockPage)) {
    return Status::NotFound("disk has no superblock (never formatted)");
  }
  std::vector<std::byte> image(disk->page_size());
  STORM_RETURN_NOT_OK(disk->Read(kSuperblockPage, image.data()));
  ByteReader reader(std::string_view(reinterpret_cast<const char*>(image.data()),
                                     kEncodedSize));
  STORM_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  STORM_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (magic != kSuperblockMagic) {
    return Status::Corruption("bad superblock magic");
  }
  if (version != kSuperblockVersion) {
    return Status::Corruption("unsupported superblock version " +
                              std::to_string(version));
  }
  Superblock sb;
  STORM_ASSIGN_OR_RETURN(sb.checkpoint_first, reader.GetU64());
  STORM_ASSIGN_OR_RETURN(sb.wal_first, reader.GetU64());
  STORM_ASSIGN_OR_RETURN(uint32_t stored_crc, reader.GetU32());
  uint32_t computed =
      Crc32(image.data(), kEncodedSize - sizeof(uint32_t));
  if (stored_crc != computed) {
    return Status::Corruption("superblock CRC mismatch");
  }
  return sb;
}

Status WriteSuperblock(BlockManager* disk, const Superblock& sb) {
  ByteWriter w;
  w.PutU32(kSuperblockMagic);
  w.PutU32(kSuperblockVersion);
  w.PutU64(sb.checkpoint_first);
  w.PutU64(sb.wal_first);
  uint32_t crc = Crc32(reinterpret_cast<const std::byte*>(w.data().data()),
                       w.size());
  w.PutU32(crc);
  std::vector<std::byte> image(disk->page_size(), std::byte{0});
  std::memcpy(image.data(), w.data().data(), w.size());
  STORM_RETURN_NOT_OK(disk->Write(kSuperblockPage, image.data()));
  return disk->SyncPage(kSuperblockPage);
}

}  // namespace storm
