#include "storm/wal/page_chain.h"

#include <cassert>
#include <cstring>

#include "storm/wal/codec.h"

namespace storm {

namespace {

void EncodeHeader(std::byte* image, uint32_t magic, PageId next) {
  uint32_t reserved = 0;
  std::memcpy(image, &magic, sizeof(magic));
  std::memcpy(image + 4, &reserved, sizeof(reserved));
  std::memcpy(image + 8, &next, sizeof(next));
}

struct PageHeader {
  uint32_t magic = 0;
  PageId next = kInvalidPage;
};

PageHeader DecodeHeader(const std::byte* image) {
  PageHeader h;
  std::memcpy(&h.magic, image, sizeof(h.magic));
  std::memcpy(&h.next, image + 8, sizeof(h.next));
  return h;
}

}  // namespace

PageChainWriter::PageChainWriter(BlockManager* disk, uint32_t magic)
    : disk_(disk), magic_(magic), image_(disk->page_size(), std::byte{0}) {
  assert(disk_->page_size() > kPageChainHeaderSize);
}

Status PageChainWriter::Open() {
  assert(first_page_ == kInvalidPage);
  first_page_ = current_page_ = disk_->Allocate();
  pages_.push_back(current_page_);
  EncodeHeader(image_.data(), magic_, kInvalidPage);
  offset_ = 0;
  STORM_RETURN_NOT_OK(WriteCurrent());
  return Status::OK();
}

Status PageChainWriter::WriteCurrent() {
  STORM_RETURN_NOT_OK(disk_->Write(current_page_, image_.data()));
  if (dirty_.empty() || dirty_.back() != current_page_) {
    dirty_.push_back(current_page_);
  }
  return Status::OK();
}

Status PageChainWriter::RollToNewPage() {
  PageId next = disk_->Allocate();
  // Link the full page to its successor, then start fresh.
  EncodeHeader(image_.data(), magic_, next);
  STORM_RETURN_NOT_OK(WriteCurrent());
  current_page_ = next;
  pages_.push_back(next);
  std::fill(image_.begin(), image_.end(), std::byte{0});
  EncodeHeader(image_.data(), magic_, kInvalidPage);
  offset_ = 0;
  return Status::OK();
}

Status PageChainWriter::Append(const void* data, size_t n) {
  assert(first_page_ != kInvalidPage && "Open() must be called first");
  const size_t capacity = disk_->page_size() - kPageChainHeaderSize;
  const std::byte* src = static_cast<const std::byte*>(data);
  while (n > 0) {
    if (offset_ == capacity) {
      STORM_RETURN_NOT_OK(RollToNewPage());
    }
    size_t take = std::min(n, capacity - offset_);
    std::memcpy(image_.data() + kPageChainHeaderSize + offset_, src, take);
    offset_ += take;
    src += take;
    n -= take;
    bytes_appended_ += take;
  }
  // One page write per call (full pages were written by RollToNewPage):
  // writing per-chunk would checksum the same page repeatedly for nothing.
  return WriteCurrent();
}

Status PageChainWriter::SyncAppended() {
  for (PageId id : dirty_) {
    STORM_RETURN_NOT_OK(disk_->SyncPage(id));
  }
  dirty_.clear();
  return Status::OK();
}

Result<PageChainContents> ReadPageChain(BlockManager* disk, PageId first_page,
                                        uint32_t magic) {
  PageChainContents out;
  std::vector<std::byte> image(disk->page_size());
  PageId page = first_page;
  bool first = true;
  while (page != kInvalidPage) {
    Status st = disk->Read(page, image.data());
    if (!st.ok()) {
      if (st.IsCorruption()) return st;
      // A linked-but-unreadable page: the link landed durably but the page
      // itself did not (crash between the two syncs). Torn tail, not an
      // error — except for the chain head, which must exist.
      if (first) {
        return Status::Corruption("chain head page " + std::to_string(page) +
                                  " unreadable: " + st.message());
      }
      out.truncated_tail = true;
      break;
    }
    PageHeader h = DecodeHeader(image.data());
    if (h.magic != magic) {
      if (first) {
        return Status::Corruption("bad chain magic on page " +
                                  std::to_string(page));
      }
      // Same reasoning as above: a recycled/zeroed successor is a torn tail.
      out.truncated_tail = true;
      break;
    }
    out.pages.push_back(page);
    out.bytes.append(reinterpret_cast<const char*>(image.data()) +
                         kPageChainHeaderSize,
                     disk->page_size() - kPageChainHeaderSize);
    page = h.next;
    first = false;
  }
  return out;
}

Status FreePageChain(BlockManager* disk, PageId first_page, uint32_t magic) {
  if (first_page == kInvalidPage) return Status::OK();
  Result<PageChainContents> contents = ReadPageChain(disk, first_page, magic);
  if (!contents.ok()) return contents.status();
  for (PageId id : contents->pages) {
    STORM_RETURN_NOT_OK(disk->Free(id));
  }
  return Status::OK();
}

}  // namespace storm
