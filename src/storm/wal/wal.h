// Write-ahead log for STORM tables (docs/ROBUSTNESS.md §Durability).
//
// The WAL is a page chain of CRC-framed records:
//
//   frame := [len u32][crc u32][type u8][lsn u64][payload: len-9 bytes]
//
// `len` counts type + lsn + payload; `crc` covers those same bytes. Frames
// are packed back to back and may span page boundaries; the zero-filled
// remainder of the tail page reads as len == 0, the end-of-log mark.
//
// LSN rules: LSNs start at 1, increase by exactly 1 per appended record,
// and survive truncation (a checkpoint stores the next LSN, and the fresh
// log continues from it), so every update in a table's history has a unique
// ordinal. Replay verifies the sequence and fails on gaps or reordering.
//
// Group commit: Append* writes frames into the (volatile) page cache only;
// Sync() issues the per-page syncs. A single-record commit is append+sync;
// UpdateManager's InsertBatch appends ONE kBatchInsert frame for the whole
// batch and syncs once, which simultaneously amortizes the sync cost and
// makes the batch atomic under crash: either the frame is durable (replay
// applies every document) or it is not (replay applies none).
//
// Torn tails: a crash can tear the last unsynced page (see
// BlockManager::Crash), leaving a prefix of the final frame. Replay treats
// the first frame whose CRC or length fails as the end of the log — those
// bytes were never acknowledged, so ignoring them is correct, not lossy.

#ifndef STORM_WAL_WAL_H_
#define STORM_WAL_WAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storm/io/block_manager.h"
#include "storm/util/result.h"
#include "storm/util/types.h"
#include "storm/wal/page_chain.h"

namespace storm {

/// Failpoint sites on the append path. "wal.append" is evaluated before any
/// page is touched (a clean unacknowledged failure); "wal.append.partial"
/// after the frame bytes are in the page cache but before the caller can
/// sync (the mid-append crash window of the recovery harness).
inline constexpr std::string_view kFailpointWalAppend = "wal.append";
inline constexpr std::string_view kFailpointWalAppendPartial =
    "wal.append.partial";

using Lsn = uint64_t;
/// LSNs start at 1; 0 never names a record.
inline constexpr Lsn kInvalidLsn = 0;

enum class WalRecordType : uint8_t {
  kInsert = 1,       ///< one document append
  kBatchInsert = 2,  ///< an atomic batch of document appends
  kDelete = 3,       ///< one tombstone
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  Lsn lsn = kInvalidLsn;
  /// Record id assigned to the insert / first id of the batch / deleted id.
  RecordId first_id = kInvalidRecordId;
  /// Serialized documents: one for kInsert, n for kBatchInsert, none for
  /// kDelete.
  std::vector<std::string> docs;
};

/// Everything replay learned from a WAL chain.
struct WalReplay {
  std::vector<WalRecord> records;
  /// LSN the reopened log should continue from.
  Lsn next_lsn = 1;
  /// True when replay stopped at a torn/incomplete final frame (ignored by
  /// design) rather than the clean end-of-log mark.
  bool torn_tail = false;
};

/// An open, appendable write-ahead log.
class Wal {
 public:
  /// Starts a fresh (empty) log on `disk`, numbering from `next_lsn`. The
  /// first page is allocated and synced, ready to hang off a superblock.
  static Result<std::unique_ptr<Wal>> Create(BlockManager* disk, Lsn next_lsn);

  Result<Lsn> AppendInsert(RecordId id, std::string_view doc_json);
  Result<Lsn> AppendBatchInsert(RecordId first_id,
                                const std::vector<std::string>& docs);
  Result<Lsn> AppendDelete(RecordId id);

  /// The group-commit point: makes every frame appended since the last
  /// Sync durable. An update is acknowledged only after its Sync returns.
  Status Sync();

  PageId first_page() const { return writer_.first_page(); }
  Lsn next_lsn() const { return next_lsn_; }

  /// Decodes every complete record of the chain at `first_page`, verifying
  /// frame CRCs and the LSN sequence. Page-level corruption propagates;
  /// torn tails are reported, not failed.
  static Result<WalReplay> Replay(BlockManager* disk, PageId first_page);

  /// Frees a truncated chain's pages (after a checkpoint has superseded it).
  static Status FreeChain(BlockManager* disk, PageId first_page);

  /// Counters for the metrics registry: appended frames / payload bytes.
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return writer_.bytes_appended(); }

 private:
  Wal(BlockManager* disk, Lsn next_lsn);

  Result<Lsn> AppendFrame(WalRecordType type, std::string_view payload);

  PageChainWriter writer_;
  Lsn next_lsn_;
  uint64_t appended_records_ = 0;
};

}  // namespace storm

#endif  // STORM_WAL_WAL_H_
