// Umbrella header: the STORM public API.
//
// Layered bottom-up:
//   util/      — Status/Result, deterministic RNG, streaming statistics
//   geo/       — points, rectangles, Hilbert curve
//   io/        — simulated disk (block manager + LRU buffer pool)
//   obs/       — metrics registry and per-query trace profiles
//   rtree/     — counted R-tree with STR/Hilbert bulk load and updates
//   sampling/  — Definition 1: QueryFirst, SampleFirst, RandomPath,
//                LS-tree, RS-tree
//   estimator/ — online aggregates with confidence intervals
//   analytics/ — KDE, clustering, trajectories, short-text
//   storage/   — JSON documents and the paged record store
//   connector/ — schema discovery, CSV/JSONL, importer
//   query/     — query language, optimizer, evaluator, session, updates
//   cluster/   — sharded execution with a merging coordinator
//   server/    — network serving layer: storm_server + RemoteClient
//   data/      — synthetic workload generators for the paper's data sets
//
// Engine internals — rtree/ node layouts and the wal/ durability machinery —
// are implementation details and are no longer re-exported here; include
// their headers directly if you are extending the engine itself. Most
// applications only need storm/client.h.

#ifndef STORM_STORM_H_
#define STORM_STORM_H_

#include "storm/client.h"

#include "storm/analytics/kde.h"
#include "storm/analytics/kmeans.h"
#include "storm/analytics/text.h"
#include "storm/analytics/trajectory.h"
#include "storm/cache/sample_cache.h"
#include "storm/cluster/coordinator.h"
#include "storm/cluster/shard.h"
#include "storm/connector/csv.h"
#include "storm/connector/free_data.h"
#include "storm/connector/importer.h"
#include "storm/connector/jsonl.h"
#include "storm/connector/schema_discovery.h"
#include "storm/data/electricity_gen.h"
#include "storm/data/osm_gen.h"
#include "storm/data/tweet_gen.h"
#include "storm/data/weather_gen.h"
#include "storm/estimator/aggregate.h"
#include "storm/estimator/confidence.h"
#include "storm/estimator/group_by.h"
#include "storm/estimator/quantile.h"
#include "storm/estimator/stopping.h"
#include "storm/geo/hilbert.h"
#include "storm/geo/point.h"
#include "storm/geo/rect.h"
#include "storm/io/block_manager.h"
#include "storm/io/buffer_pool.h"
#include "storm/obs/metrics.h"
#include "storm/obs/trace.h"
#include "storm/query/exec_options.h"
#include "storm/query/session.h"
#include "storm/sampling/failover.h"
#include "storm/server/remote_client.h"
#include "storm/server/server.h"
#include "storm/sampling/ls_tree.h"
#include "storm/sampling/query_first.h"
#include "storm/sampling/random_path.h"
#include "storm/sampling/rs_tree.h"
#include "storm/sampling/sample_first.h"
#include "storm/storage/record_store.h"
#include "storm/storage/value.h"
#include "storm/util/cancel.h"
#include "storm/util/crc32.h"
#include "storm/util/failpoint.h"
#include "storm/util/logging.h"
#include "storm/util/reservoir.h"
#include "storm/util/retry.h"
#include "storm/util/time.h"
#include "storm/util/weighted_set.h"
#include "storm/viz/render.h"
#include "storm/util/rng.h"
#include "storm/util/stats.h"
#include "storm/util/stopwatch.h"

#endif  // STORM_STORM_H_
