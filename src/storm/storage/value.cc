#include "storm/storage/value.h"

// GCC 12's -Wmaybe-uninitialized false-positives on std::variant moves in
// optimized builds (PR 105593 and friends); the code it flags is the plain
// `return obj;` of a fully-initialized Value.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace storm {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kArray:
      return "array";
    case ValueType::kObject:
      return "object";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(repr_.index());
}

bool Value::AsBool() const {
  assert(is_bool());
  return std::get<bool>(repr_);
}

int64_t Value::AsInt() const {
  assert(is_int());
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
  assert(is_double());
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  assert(is_string());
  return std::get<std::string>(repr_);
}

const Value::Array& Value::AsArray() const {
  assert(is_array());
  return std::get<Array>(repr_);
}

Value::Array& Value::AsArray() {
  assert(is_array());
  return std::get<Array>(repr_);
}

const Value::Object& Value::AsObject() const {
  assert(is_object());
  return std::get<Object>(repr_);
}

Value::Object& Value::AsObject() {
  assert(is_object());
  return std::get<Object>(repr_);
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(repr_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const Value* Value::FindPath(std::string_view dotted_path) const {
  const Value* cur = this;
  while (!dotted_path.empty()) {
    size_t dot = dotted_path.find('.');
    std::string_view head =
        dot == std::string_view::npos ? dotted_path : dotted_path.substr(0, dot);
    cur = cur->Find(head);
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return cur;
}

void Value::Set(std::string key, Value v) {
  if (is_null()) repr_ = Object{};
  assert(is_object());
  std::get<Object>(repr_).insert_or_assign(std::move(key), std::move(v));
}

void Value::Append(Value v) {
  if (is_null()) repr_ = Array{};
  assert(is_array());
  std::get<Array>(repr_).push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void SerializeTo(const Value& v, std::string* out);

void SerializeArray(const Value::Array& a, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const Value& e : a) {
    if (!first) out->push_back(',');
    first = false;
    SerializeTo(e, out);
  }
  out->push_back(']');
}

void SerializeObject(const Value::Object& o, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, e] : o) {
    if (!first) out->push_back(',');
    first = false;
    EscapeTo(k, out);
    out->push_back(':');
    SerializeTo(e, out);
  }
  out->push_back('}');
}

void SerializeTo(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      break;
    case ValueType::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case ValueType::kInt:
      *out += std::to_string(v.AsInt());
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (std::isnan(d) || std::isinf(d)) {
        *out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      // Keep the double/int distinction across round trips: an integral
      // double must not reparse as an integer.
      if (std::strpbrk(buf, ".eEnN") == nullptr) *out += ".0";
      break;
    }
    case ValueType::kString:
      EscapeTo(v.AsString(), out);
      break;
    case ValueType::kArray:
      SerializeArray(v.AsArray(), out);
      break;
    case ValueType::kObject:
      SerializeObject(v.AsObject(), out);
      break;
  }
}

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : in_(input) {}

  Result<Value> ParseDocument() {
    SkipWs();
    Result<Value> v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != in_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Fail(std::string msg) {
    return Status::Corruption(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (depth_ > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= in_.size()) return Fail("unexpected end of input");
    char c = in_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value::String(std::move(s).ValueOrDie());
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++depth_;
    Consume('{');
    Value obj = Value::MakeObject();
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (pos_ >= in_.size() || in_[pos_] != '"') return Fail("expected key string");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      Result<Value> v = ParseValue();
      if (!v.ok()) return v;
      obj.Set(std::move(key).ValueOrDie(), std::move(v).ValueOrDie());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    --depth_;
    return obj;
  }

  Result<Value> ParseArray() {
    ++depth_;
    Consume('[');
    Value arr = Value::MakeArray();
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      SkipWs();
      Result<Value> v = ParseValue();
      if (!v.ok()) return v;
      arr.Append(std::move(v).ValueOrDie());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    --depth_;
    return arr;
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) break;
      char esc = in_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; adequate for the demo data).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid after exponent, but we let from_chars decide.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view text = in_.substr(start, pos_ - start);
    if (text.empty()) return Fail("expected a value");
    if (!is_double) {
      int64_t iv = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), iv);
      if (ec == std::errc() && p == text.data() + text.size()) {
        return Value::Int(iv);
      }
      // Fall through to double on overflow.
    }
    double dv = 0.0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), dv);
    if (ec != std::errc() || p != text.data() + text.size()) {
      return Fail("invalid number");
    }
    return Value::Double(dv);
  }

  static constexpr int kMaxDepth = 256;
  std::string_view in_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Value::Parse(std::string_view json) {
  return JsonParser(json).ParseDocument();
}

}  // namespace storm
