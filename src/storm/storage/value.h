// Value: the JSON-like document model of STORM's storage engine.
//
// The published system stored records as JSON documents in MongoDB; this
// reproduction keeps the document model (null/bool/int/double/string/array/
// object) with a full JSON parser and serializer, so the data connector can
// ingest arbitrary JSON-lines sources and the record store has a stable
// wire format.

#ifndef STORM_STORAGE_VALUE_H_
#define STORM_STORAGE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "storm/util/result.h"

namespace storm {

/// Discriminator for Value.
enum class ValueType { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

std::string_view ValueTypeToString(ValueType t);

/// An immutable-ish JSON value. Cheap to move; copies are deep.
class Value {
 public:
  using Array = std::vector<Value>;
  /// Ordered map keeps serialization deterministic.
  using Object = std::map<std::string, Value, std::less<>>;

  /// Constructs null.
  Value() : repr_(std::monostate{}) {}
  Value(std::nullptr_t) : Value() {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  static Value MakeArray(Array a = {}) { return Value(Repr(std::move(a))); }
  static Value MakeObject(Object o = {}) { return Value(Repr(std::move(o))); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_array() const { return type() == ValueType::kArray; }
  bool is_object() const { return type() == ValueType::kObject; }

  /// Typed accessors; calling the wrong one is a checked error (assert).
  bool AsBool() const;
  int64_t AsInt() const;
  /// Numeric widening: valid for kInt and kDouble.
  double AsDouble() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object field lookup; returns nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Dotted-path lookup: Find("user.location.lat").
  const Value* FindPath(std::string_view dotted_path) const;

  /// Object field write (creates the object repr when null).
  void Set(std::string key, Value v);

  /// Array append (creates the array repr when null).
  void Append(Value v);

  /// Compact JSON serialization.
  std::string ToJson() const;

  /// Parses one JSON document (rejects trailing garbage).
  static Result<Value> Parse(std::string_view json);

  friend bool operator==(const Value& a, const Value& b) { return a.repr_ == b.repr_; }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string,
                            Array, Object>;
  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

}  // namespace storm

#endif  // STORM_STORAGE_VALUE_H_
