#include "storm/storage/record_store.h"

#include <cstring>

namespace storm {

RecordStore::RecordStore(RecordStoreOptions options)
    : options_(options),
      disk_(options.disk != nullptr
                ? options.disk
                : std::make_shared<BlockManager>(options.page_size)),
      pool_(std::make_unique<BufferPool>(disk_.get(), options.pool_pages)) {
  // A shared disk dictates the page size; keep the options consistent so
  // Append's fits-in-a-page check matches reality.
  options_.page_size = disk_->page_size();
}

Result<RecordId> RecordStore::Append(const Value& doc) {
  return AppendSerialized(doc.ToJson());
}

Result<RecordId> RecordStore::AppendSerialized(std::string_view payload) {
  if (payload.size() > options_.page_size) {
    return Status::InvalidArgument(
        "document (" + std::to_string(payload.size()) +
        " bytes) exceeds page size " + std::to_string(options_.page_size));
  }
  if (current_page_ == kInvalidPage ||
      current_offset_ + payload.size() > options_.page_size) {
    current_page_ = disk_->Allocate();
    current_offset_ = 0;
  }
  Location loc;
  loc.page = current_page_;
  loc.offset = static_cast<uint32_t>(current_offset_);
  loc.length = static_cast<uint32_t>(payload.size());
  loc.live = true;
  STORM_RETURN_NOT_OK(pool_->WithPage(current_page_, /*dirty=*/true,
                                      [&](std::byte* frame) {
                                        std::memcpy(frame + loc.offset,
                                                    payload.data(),
                                                    payload.size());
                                      }));
  current_offset_ += payload.size();
  directory_.push_back(loc);
  ++live_records_;
  return static_cast<RecordId>(directory_.size() - 1);
}

Result<Value> RecordStore::Get(RecordId id) const {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("record " + std::to_string(id));
  }
  const Location& loc = directory_[id];
  std::string payload(loc.length, '\0');
  STORM_RETURN_NOT_OK(pool_->WithPage(loc.page, /*dirty=*/false,
                                      [&](std::byte* frame) {
                                        std::memcpy(payload.data(),
                                                    frame + loc.offset,
                                                    loc.length);
                                      }));
  return Value::Parse(payload);
}

Status RecordStore::Delete(RecordId id) {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("record " + std::to_string(id));
  }
  directory_[id].live = false;
  --live_records_;
  return Status::OK();
}

bool RecordStore::Exists(RecordId id) const {
  return id < directory_.size() && directory_[id].live;
}

Status RecordStore::Scan(const std::function<bool(RecordId, const Value&)>& fn) const {
  for (RecordId id = 0; id < directory_.size(); ++id) {
    if (!directory_[id].live) continue;
    Result<Value> doc = Get(id);
    if (!doc.ok()) {
      // Keep the code (a checksum mismatch must still read as kCorruption)
      // but name the record the damaged page took down.
      return Status(doc.status().code(),
                    "scan failed at record " + std::to_string(id) + ": " +
                        std::string(doc.status().message()));
    }
    if (!fn(id, *doc)) break;
  }
  return Status::OK();
}

RecordStore::State RecordStore::ExportState() const {
  State s;
  s.directory = directory_;
  s.current_page = current_page_;
  s.current_offset = current_offset_;
  s.live_records = live_records_;
  return s;
}

Status RecordStore::RestoreState(State state) {
  for (size_t id = 0; id < state.directory.size(); ++id) {
    const Location& loc = state.directory[id];
    if (loc.live && !disk_->IsLive(loc.page)) {
      return Status::Corruption("restored directory names record " +
                                std::to_string(id) + " on non-live page " +
                                std::to_string(loc.page));
    }
  }
  directory_ = std::move(state.directory);
  current_page_ = state.current_page;
  current_offset_ = state.current_offset;
  live_records_ = state.live_records;
  return Status::OK();
}

}  // namespace storm
