#include "storm/storage/record_store.h"

#include <cstring>

namespace storm {

RecordStore::RecordStore(RecordStoreOptions options)
    : options_(options),
      disk_(std::make_unique<BlockManager>(options.page_size)),
      pool_(std::make_unique<BufferPool>(disk_.get(), options.pool_pages)) {}

Result<RecordId> RecordStore::Append(const Value& doc) {
  std::string payload = doc.ToJson();
  if (payload.size() > options_.page_size) {
    return Status::InvalidArgument(
        "document (" + std::to_string(payload.size()) +
        " bytes) exceeds page size " + std::to_string(options_.page_size));
  }
  if (current_page_ == kInvalidPage ||
      current_offset_ + payload.size() > options_.page_size) {
    current_page_ = disk_->Allocate();
    current_offset_ = 0;
  }
  Location loc;
  loc.page = current_page_;
  loc.offset = static_cast<uint32_t>(current_offset_);
  loc.length = static_cast<uint32_t>(payload.size());
  loc.live = true;
  STORM_RETURN_NOT_OK(pool_->WithPage(current_page_, /*dirty=*/true,
                                      [&](std::byte* frame) {
                                        std::memcpy(frame + loc.offset,
                                                    payload.data(),
                                                    payload.size());
                                      }));
  current_offset_ += payload.size();
  directory_.push_back(loc);
  ++live_records_;
  return static_cast<RecordId>(directory_.size() - 1);
}

Result<Value> RecordStore::Get(RecordId id) const {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("record " + std::to_string(id));
  }
  const Location& loc = directory_[id];
  std::string payload(loc.length, '\0');
  STORM_RETURN_NOT_OK(pool_->WithPage(loc.page, /*dirty=*/false,
                                      [&](std::byte* frame) {
                                        std::memcpy(payload.data(),
                                                    frame + loc.offset,
                                                    loc.length);
                                      }));
  return Value::Parse(payload);
}

Status RecordStore::Delete(RecordId id) {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("record " + std::to_string(id));
  }
  directory_[id].live = false;
  --live_records_;
  return Status::OK();
}

bool RecordStore::Exists(RecordId id) const {
  return id < directory_.size() && directory_[id].live;
}

Status RecordStore::Scan(const std::function<bool(RecordId, const Value&)>& fn) const {
  for (RecordId id = 0; id < directory_.size(); ++id) {
    if (!directory_[id].live) continue;
    Result<Value> doc = Get(id);
    if (!doc.ok()) return doc.status();
    if (!fn(id, *doc)) break;
  }
  return Status::OK();
}

}  // namespace storm
