// RecordStore: STORM's storage engine — a paged, JSON-document record store
// (the single-node stand-in for the distributed MongoDB installation of the
// published system).
//
// Documents are serialized as compact JSON and appended into fixed-size
// pages behind a buffer pool, so reads/writes produce realistic simulated
// I/O. Record ids are dense and stable; deletes are tombstones (space
// reclamation is out of scope for the reproduction and documented as such).

#ifndef STORM_STORAGE_RECORD_STORE_H_
#define STORM_STORAGE_RECORD_STORE_H_

#include <functional>
#include <memory>
#include <vector>

#include "storm/io/buffer_pool.h"
#include "storm/storage/value.h"
#include "storm/util/types.h"

namespace storm {

struct RecordStoreOptions {
  size_t page_size = 4096;
  /// Buffer pool frames for the store's own pages.
  size_t pool_pages = 1024;
};

class RecordStore {
 public:
  explicit RecordStore(RecordStoreOptions options = {});

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  /// Appends a document; returns its record id. Fails when the serialized
  /// document exceeds one page.
  Result<RecordId> Append(const Value& doc);

  /// Fetches and parses a document. NotFound for deleted/never-assigned
  /// ids.
  Result<Value> Get(RecordId id) const;

  /// Tombstones a record. NotFound when absent.
  Status Delete(RecordId id);

  bool Exists(RecordId id) const;

  /// Number of live records.
  uint64_t size() const { return live_records_; }

  /// Largest assigned id + 1 (ids are dense from 0, including tombstones).
  uint64_t next_id() const { return directory_.size(); }

  /// Visits every live record in id order. Returning false from `fn` stops
  /// the scan.
  Status Scan(const std::function<bool(RecordId, const Value&)>& fn) const;

  const IoStats& io_stats() const { return disk_->stats(); }
  BufferPool* pool() { return pool_.get(); }

 private:
  struct Location {
    PageId page = kInvalidPage;
    uint32_t offset = 0;
    uint32_t length = 0;
    bool live = false;
  };

  RecordStoreOptions options_;
  std::unique_ptr<BlockManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<Location> directory_;
  PageId current_page_ = kInvalidPage;
  size_t current_offset_ = 0;
  uint64_t live_records_ = 0;
};

}  // namespace storm

#endif  // STORM_STORAGE_RECORD_STORE_H_
