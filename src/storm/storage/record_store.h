// RecordStore: STORM's storage engine — a paged, JSON-document record store
// (the single-node stand-in for the distributed MongoDB installation of the
// published system).
//
// Documents are serialized as compact JSON and appended into fixed-size
// pages behind a buffer pool, so reads/writes produce realistic simulated
// I/O. Record ids are dense and stable; deletes are tombstones (space
// reclamation is out of scope for the reproduction and documented as such).
//
// Durability: the store itself keeps no on-disk metadata — the directory
// (record id -> page location) lives in memory. ExportState/RestoreState
// round-trip that metadata so the durability layer can persist it inside a
// checkpoint blob and reopen the store over the same (shared) BlockManager
// after a crash. Because Append assigns ids densely in call order and the
// cursor (current page/offset) is part of the state, replaying the same
// sequence of appends after a restore reproduces the same ids and layout.

#ifndef STORM_STORAGE_RECORD_STORE_H_
#define STORM_STORAGE_RECORD_STORE_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "storm/io/buffer_pool.h"
#include "storm/storage/value.h"
#include "storm/util/types.h"

namespace storm {

struct RecordStoreOptions {
  size_t page_size = 4096;
  /// Buffer pool frames for the store's own pages.
  size_t pool_pages = 1024;
  /// Optional externally owned disk (the durability layer shares one
  /// BlockManager between the store, the WAL, and checkpoint chains). When
  /// null the store creates a private disk; page_size must match when set.
  std::shared_ptr<BlockManager> disk;
};

class RecordStore {
 public:
  /// Where one record's serialized bytes live.
  struct Location {
    PageId page = kInvalidPage;
    uint32_t offset = 0;
    uint32_t length = 0;
    bool live = false;
  };

  /// The store's complete in-memory metadata, as persisted in checkpoints.
  struct State {
    std::vector<Location> directory;
    PageId current_page = kInvalidPage;
    uint64_t current_offset = 0;
    uint64_t live_records = 0;
  };

  explicit RecordStore(RecordStoreOptions options = {});

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  /// Appends a document; returns its record id. Fails when the serialized
  /// document exceeds one page.
  Result<RecordId> Append(const Value& doc);

  /// Appends an already-serialized document (compact JSON, as produced by
  /// Value::ToJson). Lets callers that serialized the document once — e.g.
  /// for a WAL payload — skip re-serializing it here.
  Result<RecordId> AppendSerialized(std::string_view payload);

  /// Fetches and parses a document. NotFound for deleted/never-assigned
  /// ids.
  Result<Value> Get(RecordId id) const;

  /// Tombstones a record. NotFound when absent.
  Status Delete(RecordId id);

  bool Exists(RecordId id) const;

  /// Number of live records.
  uint64_t size() const { return live_records_; }

  /// Largest assigned id + 1 (ids are dense from 0, including tombstones).
  uint64_t next_id() const { return directory_.size(); }

  /// Visits every live record in id order. Returning false from `fn` stops
  /// the scan. An unreadable record fails the scan with the underlying
  /// status code (kCorruption for checksum mismatches) and names the
  /// failing record id in the message, so callers can report exactly which
  /// record a damaged page took down.
  Status Scan(const std::function<bool(RecordId, const Value&)>& fn) const;

  /// Snapshot of the directory + append cursor (for checkpoints).
  State ExportState() const;

  /// Replaces the directory + append cursor (recovery). The pages named by
  /// the state must already exist on this store's disk.
  Status RestoreState(State state);

  IoStats io_stats() const { return disk_->stats(); }
  /// The live atomic counters (what QueryProfile snapshots span deltas
  /// from while other threads may be running).
  const AtomicIoStats& live_io_stats() const { return disk_->live_stats(); }
  BufferPool* pool() { return pool_.get(); }
  BlockManager* disk() { return disk_.get(); }
  /// The disk, shareable with the WAL/checkpoint writers.
  std::shared_ptr<BlockManager> shared_disk() const { return disk_; }

 private:
  RecordStoreOptions options_;
  std::shared_ptr<BlockManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<Location> directory_;
  PageId current_page_ = kInvalidPage;
  size_t current_offset_ = 0;
  uint64_t live_records_ = 0;
};

}  // namespace storm

#endif  // STORM_STORAGE_RECORD_STORE_H_
