// D-dimensional points. STORM treats time as one more coordinate, so a
// spatio-temporal record is simply a Point<3> = (x, y, t) and a
// spatio-temporal range is a Rect<3>.

#ifndef STORM_GEO_POINT_H_
#define STORM_GEO_POINT_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>

namespace storm {

/// A point in D-dimensional Euclidean space.
template <int D>
struct Point {
  static_assert(D >= 1, "dimension must be positive");
  static constexpr int kDim = D;

  std::array<double, D> coords{};

  Point() = default;

  /// Variadic constructor: Point<2>(x, y), Point<3>(x, y, t).
  template <typename... Args,
            typename = std::enable_if_t<sizeof...(Args) == static_cast<size_t>(D)>>
  explicit Point(Args... args) : coords{{static_cast<double>(args)...}} {}

  double operator[](int i) const { return coords[static_cast<size_t>(i)]; }
  double& operator[](int i) { return coords[static_cast<size_t>(i)]; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }

  /// Squared Euclidean distance to another point.
  double DistanceSquared(const Point& other) const {
    double acc = 0.0;
    for (int i = 0; i < D; ++i) {
      double d = coords[static_cast<size_t>(i)] - other.coords[static_cast<size_t>(i)];
      acc += d * d;
    }
    return acc;
  }

  /// Euclidean distance to another point.
  double Distance(const Point& other) const { return std::sqrt(DistanceSquared(other)); }

  std::string ToString() const {
    std::ostringstream os;
    os << '(';
    for (int i = 0; i < D; ++i) {
      if (i) os << ", ";
      os << coords[static_cast<size_t>(i)];
    }
    os << ')';
    return os.str();
  }
};

template <int D>
std::ostream& operator<<(std::ostream& os, const Point<D>& p) {
  return os << p.ToString();
}

using Point2 = Point<2>;
using Point3 = Point<3>;

}  // namespace storm

#endif  // STORM_GEO_POINT_H_
