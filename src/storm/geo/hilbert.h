// Hilbert space-filling curve for arbitrary dimension, used to order points
// when bulk-loading the Hilbert R-tree underlying the RS-tree (§3.1 of the
// paper).
//
// The integer-grid transform is John Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004); the
// transpose is then bit-interleaved into a single index. The number of bits
// per dimension is chosen so that the full index fits in 64 bits
// (bits * dim <= 63).

#ifndef STORM_GEO_HILBERT_H_
#define STORM_GEO_HILBERT_H_

#include <cstdint>
#include <vector>

#include "storm/geo/point.h"
#include "storm/geo/rect.h"

namespace storm {

/// Maximum bits per dimension so the Hilbert index of a d-dim point fits in
/// an unsigned 64-bit integer.
constexpr int HilbertBitsForDim(int dim) { return 63 / dim; }

/// Transforms grid coordinates (each < 2^bits) into their Hilbert index.
/// `coords` has `dim` entries and is clobbered. Requires dim*bits <= 63.
uint64_t HilbertIndexFromGrid(uint32_t* coords, int dim, int bits);

/// Inverse of HilbertIndexFromGrid: writes the grid coordinates of the
/// index'th point on the curve into `coords`.
void HilbertGridFromIndex(uint64_t index, uint32_t* coords, int dim, int bits);

/// Maps continuous points inside a fixed bounding box onto the Hilbert curve.
///
/// The mapper quantizes each coordinate to a 2^bits grid over the box; points
/// outside the box are clamped. Distinct nearby points may share an index,
/// which is fine for the R-tree ordering use case.
template <int D>
class HilbertMapper {
 public:
  /// `bounds` must be non-empty; `bits` defaults to the maximum that fits.
  explicit HilbertMapper(const Rect<D>& bounds, int bits = HilbertBitsForDim(D))
      : bounds_(bounds), bits_(bits) {
    double cells = static_cast<double>(uint64_t{1} << bits_);
    for (int i = 0; i < D; ++i) {
      double span = bounds.hi()[i] - bounds.lo()[i];
      scale_[i] = span > 0 ? cells / span : 0.0;
    }
  }

  int bits() const { return bits_; }

  /// Hilbert index of p within the bounding box.
  uint64_t Index(const Point<D>& p) const {
    uint32_t grid[D];
    uint32_t max_cell = static_cast<uint32_t>((uint64_t{1} << bits_) - 1);
    for (int i = 0; i < D; ++i) {
      double offset = (p[i] - bounds_.lo()[i]) * scale_[i];
      if (offset < 0) offset = 0;
      uint64_t cell = static_cast<uint64_t>(offset);
      grid[i] = static_cast<uint32_t>(cell > max_cell ? max_cell : cell);
    }
    return HilbertIndexFromGrid(grid, D, bits_);
  }

 private:
  Rect<D> bounds_;
  int bits_;
  double scale_[D];
};

}  // namespace storm

#endif  // STORM_GEO_HILBERT_H_
