#include "storm/geo/hilbert.h"

#include <cassert>

namespace storm {

namespace {

// Skilling's AxesToTranspose: in-place conversion of grid coordinates to the
// Hilbert "transpose" representation.
void AxesToTranspose(uint32_t* x, int dim, int bits) {
  uint32_t m = uint32_t{1} << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (int i = 0; i < dim; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < dim; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[dim - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dim; ++i) x[i] ^= t;
}

// Skilling's TransposeToAxes: inverse of the above.
void TransposeToAxes(uint32_t* x, int dim, int bits) {
  uint32_t n = uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[dim - 1] >> 1;
  for (int i = dim - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    uint32_t p = q - 1;
    for (int i = dim - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        uint32_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

}  // namespace

uint64_t HilbertIndexFromGrid(uint32_t* coords, int dim, int bits) {
  assert(dim >= 1 && bits >= 1 && dim * bits <= 63);
  AxesToTranspose(coords, dim, bits);
  // Interleave: bit (bits-1-b) of coords[i] -> index bit position counted
  // from the most significant downwards, dimension 0 first within each
  // bit-plane.
  uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < dim; ++i) {
      index = (index << 1) | ((coords[i] >> b) & 1u);
    }
  }
  return index;
}

void HilbertGridFromIndex(uint64_t index, uint32_t* coords, int dim, int bits) {
  assert(dim >= 1 && bits >= 1 && dim * bits <= 63);
  for (int i = 0; i < dim; ++i) coords[i] = 0;
  int pos = dim * bits;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < dim; ++i) {
      --pos;
      coords[i] |= static_cast<uint32_t>((index >> pos) & 1u) << b;
    }
  }
  TransposeToAxes(coords, dim, bits);
}

}  // namespace storm
