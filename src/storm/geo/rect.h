// Axis-aligned D-dimensional rectangles (MBRs and range queries).

#ifndef STORM_GEO_RECT_H_
#define STORM_GEO_RECT_H_

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "storm/geo/point.h"

namespace storm {

/// A closed axis-aligned box [lo, hi] in D dimensions.
///
/// The default-constructed Rect is *empty*: it contains no point, has zero
/// area, and expanding it by a point/rect yields that point/rect. This makes
/// it the identity for Expand(), which is how MBRs are accumulated.
template <int D>
class Rect {
 public:
  static constexpr int kDim = D;

  /// Constructs the empty rectangle.
  Rect() {
    for (int i = 0; i < D; ++i) {
      lo_[i] = std::numeric_limits<double>::infinity();
      hi_[i] = -std::numeric_limits<double>::infinity();
    }
  }

  /// Constructs [lo, hi]; callers must ensure lo[i] <= hi[i] per dimension
  /// (use FromCorners to normalize arbitrary corners).
  Rect(const Point<D>& lo, const Point<D>& hi) : lo_(lo), hi_(hi) {}

  /// Degenerate rectangle covering exactly one point.
  explicit Rect(const Point<D>& p) : lo_(p), hi_(p) {}

  /// Builds the rectangle spanned by two arbitrary corners.
  static Rect FromCorners(const Point<D>& a, const Point<D>& b) {
    Point<D> lo, hi;
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(a[i], b[i]);
      hi[i] = std::max(a[i], b[i]);
    }
    return Rect(lo, hi);
  }

  /// The rectangle covering all of R^D.
  static Rect Everything() {
    Point<D> lo, hi;
    for (int i = 0; i < D; ++i) {
      lo[i] = -std::numeric_limits<double>::infinity();
      hi[i] = std::numeric_limits<double>::infinity();
    }
    return Rect(lo, hi);
  }

  const Point<D>& lo() const { return lo_; }
  const Point<D>& hi() const { return hi_; }

  /// True iff the rectangle contains no point.
  bool IsEmpty() const {
    for (int i = 0; i < D; ++i) {
      if (lo_[i] > hi_[i]) return true;
    }
    return false;
  }

  /// True iff p lies inside (closed bounds).
  bool Contains(const Point<D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    }
    return true;
  }

  /// True iff `other` lies entirely inside this rectangle. The empty
  /// rectangle is contained in everything.
  bool Contains(const Rect& other) const {
    if (other.IsEmpty()) return true;
    if (IsEmpty()) return false;
    for (int i = 0; i < D; ++i) {
      if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
    }
    return true;
  }

  /// True iff the two rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    for (int i = 0; i < D; ++i) {
      if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
    }
    return true;
  }

  /// Grows this rectangle to cover p.
  void Expand(const Point<D>& p) {
    for (int i = 0; i < D; ++i) {
      lo_[i] = std::min(lo_[i], p[i]);
      hi_[i] = std::max(hi_[i], p[i]);
    }
  }

  /// Grows this rectangle to cover `other`.
  void Expand(const Rect& other) {
    if (other.IsEmpty()) return;
    for (int i = 0; i < D; ++i) {
      lo_[i] = std::min(lo_[i], other.lo_[i]);
      hi_[i] = std::max(hi_[i], other.hi_[i]);
    }
  }

  /// Smallest rectangle covering both arguments.
  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.Expand(b);
    return r;
  }

  /// Intersection; may be empty.
  static Rect Intersection(const Rect& a, const Rect& b) {
    if (a.IsEmpty() || b.IsEmpty()) return Rect();
    Point<D> lo, hi;
    for (int i = 0; i < D; ++i) {
      lo[i] = std::max(a.lo_[i], b.lo_[i]);
      hi[i] = std::min(a.hi_[i], b.hi_[i]);
    }
    for (int i = 0; i < D; ++i) {
      if (lo[i] > hi[i]) return Rect();
    }
    return Rect(lo, hi);
  }

  /// Product of side lengths (hyper-volume); 0 for empty or degenerate.
  double Area() const {
    if (IsEmpty()) return 0.0;
    double a = 1.0;
    for (int i = 0; i < D; ++i) a *= hi_[i] - lo_[i];
    return a;
  }

  /// Sum of side lengths; the R*-tree margin heuristic.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    double m = 0.0;
    for (int i = 0; i < D; ++i) m += hi_[i] - lo_[i];
    return m;
  }

  /// Area increase needed to also cover `other`; the Guttman insert
  /// heuristic.
  double Enlargement(const Rect& other) const {
    return Union(*this, other).Area() - Area();
  }

  /// Center point; must not be empty.
  Point<D> Center() const {
    Point<D> c;
    for (int i = 0; i < D; ++i) c[i] = (lo_[i] + hi_[i]) / 2.0;
    return c;
  }

  /// Squared distance from p to the nearest point of the rectangle (0 when
  /// inside).
  double DistanceSquared(const Point<D>& p) const {
    double acc = 0.0;
    for (int i = 0; i < D; ++i) {
      double d = 0.0;
      if (p[i] < lo_[i]) {
        d = lo_[i] - p[i];
      } else if (p[i] > hi_[i]) {
        d = p[i] - hi_[i];
      }
      acc += d * d;
    }
    return acc;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.IsEmpty() && b.IsEmpty()) return true;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << '[' << lo_.ToString() << " .. " << hi_.ToString() << ']';
    return os.str();
  }

 private:
  Point<D> lo_;
  Point<D> hi_;
};

template <int D>
std::ostream& operator<<(std::ostream& os, const Rect<D>& r) {
  return os << r.ToString();
}

using Rect2 = Rect<2>;
using Rect3 = Rect<3>;

}  // namespace storm

#endif  // STORM_GEO_RECT_H_
