// Visualizer module (§3.2): basic visualization tools for online estimator
// output — terminal heatmaps for KDE density maps, sparklines for
// converging estimates, trajectory plots, and PGM image export for use
// outside the terminal.

#ifndef STORM_VIZ_RENDER_H_
#define STORM_VIZ_RENDER_H_

#include <string>
#include <vector>

#include "storm/analytics/trajectory.h"
#include "storm/estimator/confidence.h"
#include "storm/geo/rect.h"
#include "storm/util/status.h"

namespace storm {

/// Renders a row-major grid (y growing north/up) as an ASCII heat map,
/// one character per cell, normalized to the max cell.
std::string RenderHeatmap(const std::vector<double>& grid, int width,
                          int height);

/// Renders the history of an estimate as a one-line unicode sparkline
/// (▁▂▃▄▅▆▇█), normalized to the min/max of the series.
std::string RenderSparkline(const std::vector<double>& series);

/// Renders a series of (estimate, half_width) checkpoints as a fixed-width
/// text chart with the interval band, newest last.
std::string RenderConvergence(const std::vector<ConfidenceInterval>& history,
                              int chart_width = 60);

/// Plots a trajectory's fixes onto a width×height character grid covering
/// `bounds`; fixes are drawn with '1'..'9','#' in time order and connected
/// corners are left to the eye (terminal resolution).
std::string RenderTrajectory(const std::vector<TimedPoint>& polyline,
                             const Rect2& bounds, int width, int height);

/// Writes a grid as a binary 8-bit PGM image (max-normalized; row 0 at the
/// top of the image = northmost row of the grid).
Status WritePgm(const std::string& path, const std::vector<double>& grid,
                int width, int height);

}  // namespace storm

#endif  // STORM_VIZ_RENDER_H_
