#include "storm/viz/render.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace storm {

namespace {
constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampLevels = 10;

int RampIndex(double v, double max_v) {
  if (max_v <= 0 || v <= 0) return 0;
  return std::min(kRampLevels - 1, static_cast<int>(v / max_v * kRampLevels));
}
}  // namespace

std::string RenderHeatmap(const std::vector<double>& grid, int width,
                          int height) {
  assert(grid.size() == static_cast<size_t>(width) * static_cast<size_t>(height));
  double max_v = 0;
  for (double v : grid) max_v = std::max(max_v, v);
  std::string out;
  out.reserve(static_cast<size_t>((width + 3) * height));
  for (int y = height - 1; y >= 0; --y) {
    out.push_back('|');
    for (int x = 0; x < width; ++x) {
      out.push_back(
          kRamp[RampIndex(grid[static_cast<size_t>(y) * width + x], max_v)]);
    }
    out += "|\n";
  }
  return out;
}

std::string RenderSparkline(const std::vector<double>& series) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  double lo = series[0], hi = series[0];
  for (double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : series) {
    int idx = hi > lo ? std::min(7, static_cast<int>((v - lo) / (hi - lo) * 8))
                      : 0;
    out += kBlocks[idx];
  }
  return out;
}

std::string RenderConvergence(const std::vector<ConfidenceInterval>& history,
                              int chart_width) {
  if (history.empty()) return "";
  // Scale: union of all finite interval bounds.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const ConfidenceInterval& ci : history) {
    if (std::isfinite(ci.half_width)) {
      lo = std::min(lo, ci.lower());
      hi = std::max(hi, ci.upper());
    } else {
      lo = std::min(lo, ci.estimate);
      hi = std::max(hi, ci.estimate);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi) || hi <= lo) {
    lo = history.back().estimate - 1;
    hi = history.back().estimate + 1;
  }
  auto col = [&](double v) {
    double f = (v - lo) / (hi - lo);
    return std::clamp(static_cast<int>(f * (chart_width - 1)), 0,
                      chart_width - 1);
  };
  std::string out;
  for (const ConfidenceInterval& ci : history) {
    std::string line(static_cast<size_t>(chart_width), ' ');
    if (std::isfinite(ci.half_width)) {
      int a = col(ci.lower()), b = col(ci.upper());
      for (int i = a; i <= b; ++i) line[static_cast<size_t>(i)] = '-';
    }
    line[static_cast<size_t>(col(ci.estimate))] = '*';
    char meta[64];
    std::snprintf(meta, sizeof(meta), "  k=%-8llu",
                  static_cast<unsigned long long>(ci.samples));
    out += "[" + line + "]" + meta + "\n";
  }
  return out;
}

std::string RenderTrajectory(const std::vector<TimedPoint>& polyline,
                             const Rect2& bounds, int width, int height) {
  std::vector<std::string> rows(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  double dx = bounds.hi()[0] - bounds.lo()[0];
  double dy = bounds.hi()[1] - bounds.lo()[1];
  for (size_t i = 0; i < polyline.size(); ++i) {
    const Point2& p = polyline[i].position;
    if (!bounds.Contains(p)) continue;
    int x = dx > 0 ? std::min(width - 1, static_cast<int>((p[0] - bounds.lo()[0]) /
                                                          dx * width))
                   : 0;
    int y = dy > 0 ? std::min(height - 1, static_cast<int>((p[1] - bounds.lo()[1]) /
                                                           dy * height))
                   : 0;
    // Label by time order: 1..9 then '#'.
    size_t order = polyline.size() > 1 ? i * 9 / (polyline.size() - 1) : 0;
    char mark = order < 9 ? static_cast<char>('1' + order) : '#';
    rows[static_cast<size_t>(y)][static_cast<size_t>(x)] = mark;
  }
  std::string out;
  for (int y = height - 1; y >= 0; --y) {
    out.push_back('|');
    out += rows[static_cast<size_t>(y)];
    out += "|\n";
  }
  return out;
}

Status WritePgm(const std::string& path, const std::vector<double>& grid,
                int width, int height) {
  if (grid.size() != static_cast<size_t>(width) * static_cast<size_t>(height)) {
    return Status::InvalidArgument("grid size does not match dimensions");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  double max_v = 0;
  for (double v : grid) max_v = std::max(max_v, v);
  out << "P5\n" << width << " " << height << "\n255\n";
  for (int y = height - 1; y >= 0; --y) {  // image row 0 = north
    for (int x = 0; x < width; ++x) {
      double v = grid[static_cast<size_t>(y) * width + x];
      unsigned char pixel =
          max_v > 0 ? static_cast<unsigned char>(
                          std::clamp(v / max_v * 255.0, 0.0, 255.0))
                    : 0;
      out.put(static_cast<char>(pixel));
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace storm
