#include "storm/sampling/random_path.h"

namespace storm {

template <int D>
RandomPathSampler<D>::RandomPathSampler(const RTree<D>* tree, Rng rng)
    : tree_(tree), rng_(rng) {}

template <int D>
Status RandomPathSampler<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  mode_ = mode;
  canonical_ = tree_->CanonicalSet(query);
  weights_.clear();
  weights_.reserve(canonical_.covered.size() + 1);
  for (const auto* node : canonical_.covered) {
    weights_.push_back(static_cast<double>(node->count));
  }
  weights_.push_back(static_cast<double>(canonical_.residual.size()));
  reported_.clear();
  began_ = true;
  metrics_ = GetSamplerCounters(this->name());
  metrics_.begins->Increment();
  return Status::OK();
}

template <int D>
std::optional<typename RandomPathSampler<D>::Entry> RandomPathSampler<D>::Next() {
  if (!began_ || canonical_.count == 0) return std::nullopt;
  if (mode_ == SamplingMode::kWithoutReplacement &&
      reported_.size() >= canonical_.count) {
    return std::nullopt;
  }
  // Rejection on duplicates keeps without-replacement draws uniform; the
  // loop terminates because at least one unreported record remains.
  while (true) {
    size_t slot = rng_.Discrete(weights_);
    Entry e;
    if (slot < canonical_.covered.size()) {
      e = tree_->SampleSubtree(canonical_.covered[slot], &rng_);
    } else {
      e = canonical_.residual[static_cast<size_t>(
          rng_.Uniform(canonical_.residual.size()))];
    }
    if (mode_ == SamplingMode::kWithoutReplacement) {
      if (!reported_.insert(e.id).second) continue;
    }
    metrics_.draws->Increment();
    return e;
  }
}

template <int D>
CardinalityEstimate RandomPathSampler<D>::Cardinality() const {
  CardinalityEstimate c;
  if (began_) {
    c.lower = c.upper = canonical_.count;
    c.exact = true;
    c.estimate = static_cast<double>(canonical_.count);
  }
  return c;
}

template <int D>
bool RandomPathSampler<D>::IsExhausted() const {
  if (!began_) return false;
  if (canonical_.count == 0) return true;
  return mode_ == SamplingMode::kWithoutReplacement &&
         reported_.size() >= canonical_.count;
}

template class RandomPathSampler<2>;
template class RandomPathSampler<3>;

}  // namespace storm
