// LS-tree: the "level sampling" index of §3.1.
//
// P_0 = P, and P_{i+1} is an independent coin-flip sample of P_i with rate
// 1/2 (configurable), stopping when the level is small; one R-tree T_i per
// level, total space O(N) because the sizes form a geometric series.
//
// A query runs ordinary range reports on T_ℓ, T_{ℓ-1}, …: the matches at
// level i form a probability-(1/2^i) coin-flip sample of P ∩ Q; they are
// randomly permuted and emitted one by one, deduplicated against lower
// levels (P_{i+1} ⊆ P_i), until the user stops or level 0 exhausts the
// query exactly. Each level is a *sequential* range scan, so a disk-resident
// LS-tree costs O(k/B) page faults for k samples instead of RandomPath's
// Ω(k).
//
// Membership of a record in level i is decided by a salted hash of its
// record id, not by a stored coin: levels are reproducible, inserts and
// deletes touch exactly the trees the record belongs to, and no per-record
// level map is needed.

#ifndef STORM_SAMPLING_LS_TREE_H_
#define STORM_SAMPLING_LS_TREE_H_

#include <memory>
#include <vector>

#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

/// Tuning knobs for an LsTree.
struct LsTreeOptions {
  /// Sampling rate between consecutive levels (paper: 1/2).
  double level_ratio = 0.5;
  /// Stop adding levels when the expected top-level size drops below this.
  size_t min_level_size = 256;
  /// Passed through to every per-level R-tree.
  RTreeOptions rtree;
};

template <int D>
class LsTree {
 public:
  using Entry = typename RTree<D>::Entry;

  /// Builds all levels by bulk loading. `seed` salts the level hash, so two
  /// LS-trees with different seeds promote different records.
  LsTree(std::vector<Entry> entries, LsTreeOptions options, uint64_t seed);

  /// Inserts a record into every level it hashes into (grows a new top
  /// level when level 0 has outgrown the configured ratio schedule).
  void Insert(const Point<D>& point, RecordId id);

  /// Removes the record from every level; false when absent.
  bool Erase(const Point<D>& point, RecordId id);

  uint64_t size() const { return trees_.empty() ? 0 : trees_[0].size(); }
  int num_levels() const { return static_cast<int>(trees_.size()); }
  const RTree<D>& tree(int level) const { return trees_[static_cast<size_t>(level)]; }

  /// The level this record belongs up to (it is present in trees 0..level).
  int LevelOf(RecordId id) const;

  /// Total node visits across all levels (I/O accounting for benchmarks).
  uint64_t nodes_touched() const;
  void ResetTouchCount() const;

  /// Creates a sampler over this index; the index must outlive it.
  /// LS-tree sampling is inherently without-replacement (Begin rejects
  /// kWithReplacement with NotSupported).
  std::unique_ptr<SpatialSampler<D>> NewSampler(Rng rng) const;

  /// Sum of entries over all levels (space accounting; expected ~2N).
  uint64_t TotalEntries() const;

 private:
  friend class LsTreeSamplerImpl;

  LsTreeOptions options_;
  uint64_t seed_;
  std::vector<RTree<D>> trees_;
};

extern template class LsTree<2>;
extern template class LsTree<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_LS_TREE_H_
