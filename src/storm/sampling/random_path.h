// RandomPath: Olken-style sampling by weighted root-to-leaf random walks.
//
// Begin() computes the canonical decomposition R_Q of the query once (cost
// O(r(N)), like a range-count). Next() then draws a covered subtree with
// probability |P(u)| / q (or a residual entry with probability 1/q) and
// walks a random path down that subtree using the stored subtree counts, so
// each sample costs O(log N) node visits — and, crucially, each visit is a
// *random* page: on disk-resident data the walks cost Ω(1) page faults per
// sample, which is exactly the weakness the LS-/RS-trees fix (§3.1).

#ifndef STORM_SAMPLING_RANDOM_PATH_H_
#define STORM_SAMPLING_RANDOM_PATH_H_

#include <unordered_set>
#include <vector>

#include "storm/obs/metrics.h"
#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

template <int D>
class RandomPathSampler : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;

  /// The tree must outlive the sampler.
  RandomPathSampler(const RTree<D>* tree, Rng rng);

  Status Begin(const Rect<D>& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override;
  std::optional<Entry> Next() override;
  CardinalityEstimate Cardinality() const override;
  bool IsExhausted() const override;
  std::string_view name() const override { return "RandomPath"; }

 private:
  const RTree<D>* tree_;
  Rng rng_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  typename RTree<D>::Canonical canonical_;
  std::vector<double> weights_;  // covered-node counts, then one slot for residuals
  std::unordered_set<RecordId> reported_;
  bool began_ = false;
  SamplerCounters metrics_;
};

extern template class RandomPathSampler<2>;
extern template class RandomPathSampler<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_RANDOM_PATH_H_
