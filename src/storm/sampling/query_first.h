// QueryFirst (a.k.a. RangeReport in Fig 3a): run the full range-reporting
// query once, shuffle the result, then emit samples for free.
//
// Cost O(r(N) + q) for the first sample, O(1) afterwards. This is both the
// "wait for the exact answer" baseline and the best strategy when the
// caller is going to consume a constant fraction of P ∩ Q anyway.

#ifndef STORM_SAMPLING_QUERY_FIRST_H_
#define STORM_SAMPLING_QUERY_FIRST_H_

#include <vector>

#include "storm/obs/metrics.h"
#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

template <int D>
class QueryFirstSampler : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;

  /// The tree must outlive the sampler.
  QueryFirstSampler(const RTree<D>* tree, Rng rng);

  Status Begin(const Rect<D>& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override;
  std::optional<Entry> Next() override;
  uint64_t NextBatch(std::span<Entry> out) override;
  CardinalityEstimate Cardinality() const override;
  bool IsExhausted() const override;
  std::string_view name() const override { return "QueryFirst"; }

 private:
  const RTree<D>* tree_;
  Rng rng_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  std::vector<Entry> matches_;
  size_t cursor_ = 0;
  bool began_ = false;
  SamplerCounters metrics_;
};

extern template class QueryFirstSampler<2>;
extern template class QueryFirstSampler<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_QUERY_FIRST_H_
