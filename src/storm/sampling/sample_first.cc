#include "storm/sampling/sample_first.h"

#include <algorithm>

namespace storm {

template <int D>
SampleFirstSampler<D>::SampleFirstSampler(const std::vector<Entry>* data, Rng rng,
                                          uint64_t max_attempts_per_sample)
    : data_(data), rng_(rng), max_attempts_(max_attempts_per_sample) {}

template <int D>
Status SampleFirstSampler<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  query_ = query;
  mode_ = mode;
  reported_.clear();
  attempts_ = 0;
  hits_ = 0;
  gave_up_ = false;
  began_ = true;
  return Status::OK();
}

template <int D>
uint64_t SampleFirstSampler<D>::AttemptBudget() const {
  if (max_attempts_ > 0) return max_attempts_;
  uint64_t n = data_->size();
  // With observed acceptance rate hits/attempts, 64 expected waiting times
  // make a spurious give-up vanishingly unlikely; before any hit, assume the
  // worst reasonable selectivity of 1/N.
  uint64_t per_hit = hits_ > 0 ? std::max<uint64_t>(1, attempts_ / hits_) : n;
  return std::max<uint64_t>(1024, 64 * per_hit);
}

template <int D>
std::optional<typename SampleFirstSampler<D>::Entry> SampleFirstSampler<D>::Next() {
  if (!began_ || data_->empty()) return std::nullopt;
  const uint64_t budget = AttemptBudget();
  for (uint64_t tries = 0; tries < budget; ++tries) {
    ++attempts_;
    const Entry& cand = (*data_)[static_cast<size_t>(rng_.Uniform(data_->size()))];
    if (!query_.Contains(cand.point)) continue;
    if (mode_ == SamplingMode::kWithoutReplacement) {
      if (!reported_.insert(cand.id).second) continue;
    }
    ++hits_;
    return cand;
  }
  gave_up_ = true;
  return std::nullopt;
}

template <int D>
CardinalityEstimate SampleFirstSampler<D>::Cardinality() const {
  CardinalityEstimate c;
  c.lower = hits_ > 0 ? reported_.size() : 0;
  if (mode_ == SamplingMode::kWithReplacement) c.lower = hits_ > 0 ? 1 : 0;
  c.upper = data_->size();
  c.exact = false;
  if (attempts_ > 0) {
    c.estimate = static_cast<double>(data_->size()) * static_cast<double>(hits_) /
                 static_cast<double>(attempts_);
  }
  // Attempts can exceed N in with-replacement probing, which can push the
  // ratio estimate below the hard lower bound; keep the invariant.
  return c.Clamp();
}

template <int D>
bool SampleFirstSampler<D>::IsExhausted() const {
  // SampleFirst can never prove exhaustion; it only gives up.
  return began_ && data_->empty();
}

template class SampleFirstSampler<2>;
template class SampleFirstSampler<3>;

}  // namespace storm
