// SamplingOptions: every per-query sampling knob in one struct.
//
// Earlier releases scattered these over DistributedSamplerOptions (cluster
// retry/deadline and buffer privacy), evaluator-internal batch constants,
// and per-sampler constructor parameters. They are now consolidated here and
// threaded ExecOptions → evaluator → Table::NewSampler → samplers, so the
// single-node and cluster paths read one source of truth:
//
//   session.Execute("SELECT AVG(speed) FROM taxi ...",
//                   ExecOptions().WithSampling(SamplingOptions()
//                                                  .WithBatchSize(128)
//                                                  .WithMaxStrata(32)
//                                                  .WithPreferStratified(true)));
//
// The builder-style With* setters match the ExecOptions idiom.

#ifndef STORM_SAMPLING_OPTIONS_H_
#define STORM_SAMPLING_OPTIONS_H_

#include <cstdint>

#include "storm/util/retry.h"

namespace storm {

class SampleReservoirCache;

/// Per-query sampling configuration, shared by every sampler strategy.
/// Strategies ignore the knobs that do not apply to them.
struct SamplingOptions {
  /// Samples requested per NextBatch() round in the evaluator's pump loop.
  /// Larger batches amortize dispatch and buffer refills; smaller batches
  /// tighten progress/cancellation latency.
  uint64_t batch_size = 64;

  /// Stratified engine: upper bound on the number of strata the canonical
  /// node set is partitioned into.
  int max_strata = 16;

  /// Stratified engine: strata smaller than this population are merged into
  /// a neighbour (tiny strata waste budget on per-stratum variance
  /// estimation).
  uint64_t min_stratum_population = 256;

  /// Stratified engine: minimum samples allocated to every live stratum per
  /// round before Neyman allocation distributes the rest — keeps variance
  /// estimates alive in strata the allocator currently considers quiet.
  uint64_t exploration_floor = 8;

  /// Ask the optimizer to prefer stratified execution whenever the query is
  /// eligible (aggregate AVG/SUM/COUNT over an RS-tree), skipping its
  /// cardinality/fan-out thresholds. Also what RemoteClient forwards as the
  /// wire request flag.
  bool prefer_stratified = false;

  /// Let the optimizer upgrade eligible AUTO aggregates to stratified
  /// execution on its own (cardinality/fan-out heuristics). The server turns
  /// this off for requests whose client did not send the stratified wire
  /// flag: pre-stratified clients cannot decode the STRATIFIED strategy tag,
  /// so they must never be handed one uninvited.
  bool auto_stratify = true;

  /// Give RS-tree-backed samplers (including distributed shard-locals and
  /// stratified sub-samplers) a private sample-buffer cache so parallel
  /// query workers never contend on the shared buffer mutex.
  bool private_buffers = false;

  /// Let eligible with-replacement queries drain the shared sample-reservoir
  /// cache before drawing live, and publish their draws back (opt-out knob;
  /// USING NOCACHE opts out per query). See docs/CACHING.md. Also what
  /// RemoteClient forwards (inverted) as the no-cache wire request flag.
  bool sample_cache = true;

  /// Cache instance override, local-only (never wire-carried): tests inject
  /// an isolated SampleReservoirCache here; null means the process-wide
  /// SampleReservoirCache::Default().
  SampleReservoirCache* cache = nullptr;

  /// Cluster paths: applied to every shard call (plan-round counts and
  /// per-draw probes). retry.deadline_ms acts as the per-shard deadline — a
  /// shard that cannot answer within it is treated as failed. Single-node
  /// samplers ignore it.
  RetryPolicy retry;

  // Builder-style setters (each returns *this so calls chain).
  SamplingOptions& WithBatchSize(uint64_t n) {
    batch_size = n;
    return *this;
  }
  SamplingOptions& WithMaxStrata(int n) {
    max_strata = n;
    return *this;
  }
  SamplingOptions& WithMinStratumPopulation(uint64_t n) {
    min_stratum_population = n;
    return *this;
  }
  SamplingOptions& WithExplorationFloor(uint64_t n) {
    exploration_floor = n;
    return *this;
  }
  SamplingOptions& WithPreferStratified(bool enabled) {
    prefer_stratified = enabled;
    return *this;
  }
  SamplingOptions& WithAutoStratify(bool enabled) {
    auto_stratify = enabled;
    return *this;
  }
  SamplingOptions& WithPrivateBuffers(bool enabled) {
    private_buffers = enabled;
    return *this;
  }
  SamplingOptions& WithSampleCache(bool enabled) {
    sample_cache = enabled;
    return *this;
  }
  SamplingOptions& WithCache(SampleReservoirCache* c) {
    cache = c;
    return *this;
  }
  SamplingOptions& WithRetry(const RetryPolicy& policy) {
    retry = policy;
    return *this;
  }
};

}  // namespace storm

#endif  // STORM_SAMPLING_OPTIONS_H_
