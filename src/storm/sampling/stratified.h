// StratifiedSampler: index-assisted stratified sampling over the RS-tree
// (the stratified engine of "Index-Assisted Stratified Sampling for Online
// Aggregation", PAPERS.md).
//
// At Begin the query's canonical R-tree node set is computed exactly —
// maximal fully-contained subtrees plus boundary leaves — then refined
// (large subtrees split into children for packing granularity) and greedily
// packed, in DFS order, into at most SamplingOptions::max_strata strata of
// roughly equal population. Because the tree is Hilbert bulk-loaded, DFS
// order is Hilbert order, so consecutive canonical nodes are spatially
// adjacent and each stratum is a spatially coherent region: on spatially
// correlated attributes the within-stratum variance is far below the
// population variance, which is exactly what Neyman allocation exploits.
//
// Each stratum h owns a restricted RS-tree sampler seeded from its subtree
// roots, so within-stratum draws are uniform over P(stratum) ∩ Q. Stratum
// populations N_h are exact (contained subtree counts plus scanned boundary
// leaves), so COUNT is exact at Begin and the stratified estimator gets
// exact weights W_h = N_h / N.
//
// The class is also a plain SpatialSampler: Next()/NextBatch() draw the
// stratum ∝ its (remaining) population first, so the facade stream is
// uniform over P ∩ Q and any unsuspecting estimator can consume it. The
// stratified estimator instead addresses strata directly via NextBatchFrom.

#ifndef STORM_SAMPLING_STRATIFIED_H_
#define STORM_SAMPLING_STRATIFIED_H_

#include <memory>
#include <vector>

#include "storm/obs/metrics.h"
#include "storm/sampling/options.h"
#include "storm/sampling/rs_tree.h"
#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

template <int D>
class StratifiedSampler final : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;
  using Node = typename RTree<D>::Node;

  /// The index must outlive the sampler.
  StratifiedSampler(const RsTree<D>* index, SamplingOptions options, Rng rng);

  Status Begin(const Rect<D>& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override;
  std::optional<Entry> Next() override;
  uint64_t NextBatch(std::span<Entry> out) override;
  CardinalityEstimate Cardinality() const override;
  CardinalityEstimate Cardinality(size_t stratum) const override;
  size_t Strata() const override;
  bool IsExhausted() const override;
  std::string_view name() const override { return "Stratified-RS"; }

  // --- Stratum-addressed surface (the stratified estimator's feed) ---

  /// Draws up to out.size() within-stratum uniform samples from stratum h.
  uint64_t NextBatchFrom(size_t stratum, std::span<Entry> out);

  /// Exact N_h = |P(stratum) ∩ Q|.
  uint64_t StratumPopulation(size_t stratum) const;

  /// The canonical-set subtree roots packed into stratum h (tests).
  const std::vector<const Node*>& StratumRoots(size_t stratum) const;

  /// True when stratum h's without-replacement stream ran out.
  bool StratumExhausted(size_t stratum) const;

  const SamplingOptions& options() const { return options_; }

 private:
  struct CanonNode {
    const Node* node = nullptr;
    bool contained = false;  // mbr fully inside Q (else boundary leaf)
    uint64_t population = 0;
  };
  struct Stratum {
    std::vector<const Node*> roots;
    uint64_t population = 0;
    uint64_t drawn = 0;
    bool dead = false;  // exhausted (without replacement) or failed
    std::unique_ptr<SpatialSampler<D>> sub;
  };

  void CollectCanonical(const Node* u, std::vector<CanonNode>* out) const;
  std::optional<Entry> DrawOne();

  const RsTree<D>* index_;
  SamplingOptions options_;
  Rng rng_;
  Rect<D> query_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  std::vector<Stratum> strata_;
  std::vector<double> weight_scratch_;  // facade stratum-selection weights
  uint64_t total_ = 0;
  bool began_ = false;
  SamplerCounters metrics_;
};

extern template class StratifiedSampler<2>;
extern template class StratifiedSampler<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_STRATIFIED_H_
