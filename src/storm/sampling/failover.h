// FailoverSampler: lets the query evaluator switch sampling strategy
// mid-query (§3.3 of DESIGN.md). If the primary sampler stalls — returns no
// sample while not provably exhausted, e.g. SampleFirst burning its attempt
// budget on a selective query the optimizer mis-estimated — the stream
// switches permanently to the fallback strategy and keeps going.
//
// With-replacement streams stay exactly uniform across the switch (every
// draw is an independent uniform sample under either sampler). In
// without-replacement mode the fallback cannot know which records the
// primary already reported, so the merged stream may repeat a record;
// Begin() therefore rejects kWithoutReplacement when the primary could
// stall (callers use failover for with-replacement exploration queries).

#ifndef STORM_SAMPLING_FAILOVER_H_
#define STORM_SAMPLING_FAILOVER_H_

#include <memory>
#include <utility>

#include "storm/obs/metrics.h"
#include "storm/sampling/sampler.h"

namespace storm {

template <int D>
class FailoverSampler : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;

  FailoverSampler(std::unique_ptr<SpatialSampler<D>> primary,
                  std::unique_ptr<SpatialSampler<D>> fallback)
      : primary_(std::move(primary)), fallback_(std::move(fallback)) {}

  Status Begin(const Rect<D>& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override {
    if (mode == SamplingMode::kWithoutReplacement) {
      return Status::NotSupported(
          "failover cannot keep without-replacement streams duplicate-free "
          "across a switch");
    }
    query_ = query;
    mode_ = mode;
    using_fallback_ = false;
    switched_ = false;
    return primary_->Begin(query, mode);
  }

  std::optional<Entry> Next() override {
    if (!using_fallback_) {
      std::optional<Entry> e = primary_->Next();
      if (e.has_value()) return e;
      if (primary_->IsExhausted() || !SwitchToFallback()) return std::nullopt;
    }
    return fallback_->Next();
  }

  uint64_t NextBatch(std::span<Entry> out) override {
    if (!using_fallback_) {
      uint64_t n = primary_->NextBatch(out);
      if (n > 0) return n;
      if (primary_->IsExhausted() || !SwitchToFallback()) return 0;
    }
    return fallback_->NextBatch(out);
  }

  CardinalityEstimate Cardinality() const override {
    return using_fallback_ ? fallback_->Cardinality() : primary_->Cardinality();
  }

  size_t Strata() const override {
    return using_fallback_ ? fallback_->Strata() : primary_->Strata();
  }

  CardinalityEstimate Cardinality(size_t stratum) const override {
    return using_fallback_ ? fallback_->Cardinality(stratum)
                           : primary_->Cardinality(stratum);
  }

  bool IsExhausted() const override {
    return using_fallback_ ? fallback_->IsExhausted() : primary_->IsExhausted();
  }

  std::string_view name() const override {
    return using_fallback_ ? fallback_->name() : primary_->name();
  }

  /// True once the stream has switched to the fallback strategy.
  bool switched() const { return switched_; }

 private:
  // Primary stalled without exhausting: switch permanently. Registry lookup
  // is fine here — a stream switches at most once per query.
  bool SwitchToFallback() {
    Status st = fallback_->Begin(query_, mode_);
    if (!st.ok()) return false;
    using_fallback_ = true;
    switched_ = true;
    MetricsRegistry::Default()
        .GetCounter("storm_failover_switches_total",
                    "Mid-query sampler strategy switches (primary stalled)",
                    {{"from", std::string(primary_->name())},
                     {"to", std::string(fallback_->name())}})
        ->Increment();
    return true;
  }

  std::unique_ptr<SpatialSampler<D>> primary_;
  std::unique_ptr<SpatialSampler<D>> fallback_;
  Rect<D> query_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  bool using_fallback_ = false;
  bool switched_ = false;
};

}  // namespace storm

#endif  // STORM_SAMPLING_FAILOVER_H_
