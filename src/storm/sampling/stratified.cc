#include "storm/sampling/stratified.h"

#include <algorithm>

namespace storm {

template <int D>
StratifiedSampler<D>::StratifiedSampler(const RsTree<D>* index,
                                        SamplingOptions options, Rng rng)
    : index_(index), options_(options), rng_(rng) {}

// Exact canonical node set of Q: maximal fully-contained subtrees plus the
// boundary leaves, in DFS order (= Hilbert order under bulk load).
template <int D>
void StratifiedSampler<D>::CollectCanonical(const Node* u,
                                            std::vector<CanonNode>* out) const {
  if (!query_.Intersects(u->mbr)) return;
  if (query_.Contains(u->mbr)) {
    out->push_back(CanonNode{u, /*contained=*/true, 0});
    return;
  }
  if (u->is_leaf) {
    out->push_back(CanonNode{u, /*contained=*/false, 0});
    return;
  }
  for (const auto& c : u->children) CollectCanonical(c.get(), out);
}

template <int D>
Status StratifiedSampler<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  query_ = query;
  mode_ = mode;
  strata_.clear();
  weight_scratch_.clear();
  total_ = 0;
  began_ = true;
  metrics_ = GetSamplerCounters(this->name());
  metrics_.begins->Increment();

  std::vector<CanonNode> canon;
  const Node* root = index_->tree().root();
  if (root != nullptr) CollectCanonical(root, &canon);

  // Refine: split the largest splittable (internal) canonical node into its
  // intersecting children, in place, until there is enough granularity to
  // pack max_strata balanced strata. In-place replacement preserves DFS
  // order; the `>` comparison breaks count ties toward the lowest index, so
  // the partition is deterministic.
  const size_t max_strata =
      options_.max_strata > 0 ? static_cast<size_t>(options_.max_strata) : 1;
  const size_t want_nodes = max_strata * 2;
  while (canon.size() < want_nodes) {
    size_t best = canon.size();
    uint64_t best_count = 0;
    for (size_t i = 0; i < canon.size(); ++i) {
      if (!canon[i].node->is_leaf && canon[i].node->count > best_count) {
        best = i;
        best_count = canon[i].node->count;
      }
    }
    if (best == canon.size()) break;  // only leaves left
    const Node* parent = canon[best].node;
    const bool parent_contained = canon[best].contained;
    std::vector<CanonNode> kids;
    for (const auto& c : parent->children) {
      if (!query_.Intersects(c->mbr)) continue;
      kids.push_back(CanonNode{
          c.get(), parent_contained || query_.Contains(c->mbr), 0});
    }
    canon.erase(canon.begin() + static_cast<ptrdiff_t>(best));
    canon.insert(canon.begin() + static_cast<ptrdiff_t>(best),
                 kids.begin(), kids.end());
    if (kids.empty() && canon.empty()) break;
  }

  // Exact populations; zero-population nodes contribute nothing.
  std::vector<CanonNode> populated;
  populated.reserve(canon.size());
  for (CanonNode& cn : canon) {
    if (cn.contained) {
      cn.population = cn.node->count;
    } else {
      uint64_t hits = 0;
      for (const Entry& e : cn.node->entries) {
        if (query_.Contains(e.point)) ++hits;
      }
      cn.population = hits;
    }
    if (cn.population > 0) {
      total_ += cn.population;
      populated.push_back(cn);
    }
  }

  if (populated.empty()) return Status::OK();  // q == 0: exhausted stream

  // Greedy pack consecutive canonical nodes (Hilbert-adjacent, so each
  // stratum is spatially coherent) into at most max_strata strata of
  // roughly target population each; undersized tail merges backwards.
  const size_t limit = std::max<size_t>(1, max_strata);
  const uint64_t target =
      std::max(options_.min_stratum_population,
               (total_ + static_cast<uint64_t>(limit) - 1) /
                   static_cast<uint64_t>(limit));
  Stratum cur;
  for (size_t i = 0; i < populated.size(); ++i) {
    cur.roots.push_back(populated[i].node);
    cur.population += populated[i].population;
    const bool last = (i + 1 == populated.size());
    if (!last && cur.population >= target && strata_.size() + 1 < limit) {
      strata_.push_back(std::move(cur));
      cur = Stratum();
    }
  }
  if (!cur.roots.empty()) strata_.push_back(std::move(cur));
  if (strata_.size() > 1 &&
      strata_.back().population < options_.min_stratum_population) {
    Stratum tail = std::move(strata_.back());
    strata_.pop_back();
    Stratum& prev = strata_.back();
    prev.roots.insert(prev.roots.end(), tail.roots.begin(), tail.roots.end());
    prev.population += tail.population;
  }

  // One restricted RS-tree sampler per stratum, deterministically forked.
  // Sub-samplers always use local draw buffers: the shared node buffers are
  // mutable index state, so reusing them would make the per-stratum streams
  // depend on what earlier queries happened to leave behind — breaking the
  // same-seed-same-stream guarantee the stratified engine advertises.
  for (size_t h = 0; h < strata_.size(); ++h) {
    strata_[h].sub = index_->NewSampler(
        rng_.Fork(h + 1), /*shared_buffers=*/false, strata_[h].roots);
    STORM_RETURN_NOT_OK(strata_[h].sub->Begin(query, mode));
  }
  weight_scratch_.assign(strata_.size(), 0.0);
  return Status::OK();
}

// Facade draw: stratum ∝ remaining population, then a within-stratum
// uniform draw — overall exactly uniform on P ∩ Q, so the stratified
// sampler can stand in anywhere a plain sampler is expected.
template <int D>
std::optional<typename StratifiedSampler<D>::Entry>
StratifiedSampler<D>::DrawOne() {
  if (!began_ || strata_.empty()) return std::nullopt;
  while (true) {
    double sum = 0.0;
    for (size_t h = 0; h < strata_.size(); ++h) {
      const Stratum& s = strata_[h];
      double w = 0.0;
      if (!s.dead) {
        w = (mode_ == SamplingMode::kWithoutReplacement)
                ? static_cast<double>(
                      s.population - std::min(s.population, s.drawn))
                : static_cast<double>(s.population);
      }
      weight_scratch_[h] = w;
      sum += w;
    }
    if (sum <= 0.0) return std::nullopt;
    size_t h = rng_.Discrete(weight_scratch_);
    // One-slot batch: a stratum's weight changes after every draw, so the
    // pick-then-draw loop is inherently single-entry.
    Entry e;
    if (strata_[h].sub->NextBatch(std::span<Entry>(&e, 1)) == 1) {
      ++strata_[h].drawn;
      metrics_.draws->Increment();
      return e;
    }
    if (strata_[h].sub->IsExhausted()) {
      strata_[h].dead = true;
      continue;
    }
    return std::nullopt;  // sub-sampler failure
  }
}

template <int D>
std::optional<typename StratifiedSampler<D>::Entry>
StratifiedSampler<D>::Next() {
  return DrawOne();
}

template <int D>
uint64_t StratifiedSampler<D>::NextBatch(std::span<Entry> out) {
  uint64_t n = 0;
  for (Entry& slot : out) {
    std::optional<Entry> e = DrawOne();
    if (!e.has_value()) break;
    slot = *e;
    ++n;
  }
  return n;
}

template <int D>
uint64_t StratifiedSampler<D>::NextBatchFrom(size_t stratum,
                                             std::span<Entry> out) {
  if (!began_ || stratum >= strata_.size()) return 0;
  Stratum& s = strata_[stratum];
  if (s.dead) return 0;
  uint64_t n = s.sub->NextBatch(out);
  s.drawn += n;
  if (n < out.size() && s.sub->IsExhausted()) s.dead = true;
  if (n > 0) metrics_.draws->Increment(n);
  return n;
}

template <int D>
CardinalityEstimate StratifiedSampler<D>::Cardinality() const {
  CardinalityEstimate c;
  if (began_) {
    c.lower = c.upper = total_;
    c.estimate = static_cast<double>(total_);
    c.exact = true;  // canonical-set populations are exact at Begin
  }
  return c;
}

template <int D>
CardinalityEstimate StratifiedSampler<D>::Cardinality(size_t stratum) const {
  CardinalityEstimate c;
  if (began_ && stratum < strata_.size()) {
    c.lower = c.upper = strata_[stratum].population;
    c.estimate = static_cast<double>(strata_[stratum].population);
    c.exact = true;
  }
  return c;
}

template <int D>
size_t StratifiedSampler<D>::Strata() const {
  return strata_.size();
}

template <int D>
uint64_t StratifiedSampler<D>::StratumPopulation(size_t stratum) const {
  return stratum < strata_.size() ? strata_[stratum].population : 0;
}

template <int D>
const std::vector<const typename RTree<D>::Node*>&
StratifiedSampler<D>::StratumRoots(size_t stratum) const {
  return strata_[stratum].roots;
}

template <int D>
bool StratifiedSampler<D>::StratumExhausted(size_t stratum) const {
  if (stratum >= strata_.size()) return true;
  const Stratum& s = strata_[stratum];
  return s.dead || s.sub->IsExhausted();
}

template <int D>
bool StratifiedSampler<D>::IsExhausted() const {
  if (!began_) return false;
  if (strata_.empty()) return true;  // q == 0
  if (mode_ == SamplingMode::kWithReplacement) return false;
  for (const Stratum& s : strata_) {
    if (!s.dead && !s.sub->IsExhausted()) return false;
  }
  return true;
}

template class StratifiedSampler<2>;
template class StratifiedSampler<3>;

}  // namespace storm
