// RS-tree: a single Hilbert R-tree augmented with per-node sample buffers
// (§3.1). The three ideas from the paper:
//
//  * Sample buffering — each node u carries a buffer S(u) of pre-drawn
//    uniform samples of P(u); popping a buffered sample touches only u's
//    page. Buffers are (re)filled by count-weighted random descents inside
//    T(u), so the amortized refill cost is one *local* walk per sample —
//    much cheaper and much more cache/buffer-pool friendly than RandomPath's
//    full-height walks.
//  * Lazy exploration — a query keeps a frontier of disjoint subtrees
//    covering all qualifying points, weighted by the stored counts |P(u)|;
//    nodes are only opened (replaced by their intersecting children) when
//    sampling actually lands in them, so small mostly-outside subtrees of
//    the canonical decomposition are never paid for.
//  * Acceptance/rejection — a frontier node is drawn with probability
//    |P(u)| / W; a buffered sample falling outside Q is rejected (and
//    triggers expansion of that node). Every qualifying point is drawn with
//    probability exactly 1/W per round, so accepted samples are uniform on
//    P ∩ Q.
//
// Updates go through Insert/Erase, which delegate to the R-tree and rely on
// per-node version counters to lazily invalidate stale buffers.

#ifndef STORM_SAMPLING_RS_TREE_H_
#define STORM_SAMPLING_RS_TREE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

/// Tuning knobs for an RsTree.
struct RsTreeOptions {
  /// Underlying Hilbert R-tree options.
  RTreeOptions rtree;
  /// Samples kept per node buffer; 0 means rtree.max_entries (one block).
  size_t buffer_size = 0;
  /// Fill every node's buffer at build time instead of lazily on first use.
  bool prefill = false;

  size_t EffectiveBufferSize() const {
    return buffer_size > 0 ? buffer_size
                           : static_cast<size_t>(rtree.max_entries);
  }
};

template <int D>
class RsTree {
 public:
  using Entry = typename RTree<D>::Entry;
  using Node = typename RTree<D>::Node;

  /// Bulk loads a Hilbert R-tree over the entries.
  RsTree(std::vector<Entry> entries, RsTreeOptions options, uint64_t seed);

  void Insert(const Point<D>& point, RecordId id);
  bool Erase(const Point<D>& point, RecordId id);

  uint64_t size() const { return tree_.size(); }
  const RTree<D>& tree() const { return tree_; }

  /// Creates a sampler over this index; the index must outlive it.
  /// Supports both sampling modes. Draws through the shared buffer map.
  std::unique_ptr<SpatialSampler<D>> NewSampler(Rng rng) const;

  /// Like the above, but `shared_buffers = false` gives the sampler its own
  /// private buffer cache, so its draw path never takes the shared buffer
  /// mutex. Parallel query workers use this: N workers each refill their
  /// own buffers instead of serializing on one lock.
  std::unique_ptr<SpatialSampler<D>> NewSampler(Rng rng,
                                                bool shared_buffers) const;

  /// Restricted sampler: uniform over P(roots) ∩ Q instead of the whole
  /// tree — Begin seeds the frontier from `roots` (disjoint subtree roots,
  /// e.g. one stratum of the canonical node set) rather than the tree root.
  /// The stratified engine builds one of these per stratum.
  std::unique_ptr<SpatialSampler<D>> NewSampler(
      Rng rng, bool shared_buffers,
      std::vector<const Node*> roots) const;

 private:
  struct Buffer {
    uint64_t node_id = 0;  ///< guards against node address reuse
    uint64_t version = 0;  ///< node version the samples were drawn at
    std::vector<Entry> samples;
  };

 public:
  /// A sampler-private buffer cache (same pop/refill discipline as the
  /// shared map, but owned by exactly one sampler). Opaque to callers;
  /// construct one and hand it to the lock-free DrawFromNode overload.
  class LocalBuffers {
   public:
    LocalBuffers() = default;
    size_t buffered_nodes() const { return buffers_.size(); }

   private:
    friend class RsTree<D>;
    std::unordered_map<const Node*, Buffer> buffers_;
  };

  /// Pops one uniform sample of P(u) from u's buffer, refilling (and
  /// revalidating) the buffer as needed. Exposed for the sampler and for
  /// white-box tests.
  ///
  /// Thread-safe against other DrawFromNode calls (the shared buffer map is
  /// mutex-guarded), so multiple queries may sample one RS-tree
  /// concurrently — provided no updates run at the same time and the
  /// underlying R-tree has no BufferPool attached.
  Entry DrawFromNode(const Node* u) const;

  /// Lock-free variant: pops from `local` (refilling with `rng`) instead of
  /// the shared map. Callers own both, so concurrent draws never contend —
  /// the tree itself is only read. Same uniformity guarantee: buffers are
  /// filled by the same count-weighted descents, just cached per caller.
  Entry DrawFromNode(const Node* u, LocalBuffers* local, Rng* rng) const;

  /// Number of buffered nodes (space accounting / tests).
  size_t buffered_nodes() const { return buffers_.size(); }

  uint64_t nodes_touched() const { return tree_.nodes_touched(); }
  void ResetTouchCount() const { tree_.ResetTouchCount(); }

 private:
  void FillBuffer(const Node* u, Buffer* buf, Rng* rng) const;
  void PrefillRec(const Node* u);
  void SweepDeadBuffers() const;

  RsTreeOptions options_;
  RTree<D> tree_;
  // unique_ptr keeps the index movable (std::mutex is not).
  std::unique_ptr<std::mutex> buffers_mutex_ = std::make_unique<std::mutex>();
  mutable Rng rng_;  // drives buffer refills; guarded by buffers_mutex_
  mutable std::unordered_map<const Node*, Buffer> buffers_;
  mutable uint64_t erases_since_sweep_ = 0;
};

extern template class RsTree<2>;
extern template class RsTree<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_RS_TREE_H_
