#include "storm/sampling/query_first.h"

#include <algorithm>

namespace storm {

template <int D>
QueryFirstSampler<D>::QueryFirstSampler(const RTree<D>* tree, Rng rng)
    : tree_(tree), rng_(rng) {}

template <int D>
Status QueryFirstSampler<D>::Begin(const Rect<D>& query, SamplingMode mode) {
  mode_ = mode;
  matches_ = tree_->RangeReport(query);
  rng_.Shuffle(matches_);
  cursor_ = 0;
  began_ = true;
  metrics_ = GetSamplerCounters(this->name());
  metrics_.begins->Increment();
  return Status::OK();
}

template <int D>
std::optional<typename QueryFirstSampler<D>::Entry> QueryFirstSampler<D>::Next() {
  if (!began_ || matches_.empty()) return std::nullopt;
  if (mode_ == SamplingMode::kWithReplacement) {
    metrics_.draws->Increment();
    return matches_[static_cast<size_t>(rng_.Uniform(matches_.size()))];
  }
  if (cursor_ >= matches_.size()) return std::nullopt;
  metrics_.draws->Increment();
  return matches_[cursor_++];
}

template <int D>
uint64_t QueryFirstSampler<D>::NextBatch(std::span<Entry> out) {
  if (!began_ || matches_.empty() || out.empty()) return 0;
  if (mode_ == SamplingMode::kWithReplacement) {
    for (Entry& slot : out) {
      slot = matches_[static_cast<size_t>(rng_.Uniform(matches_.size()))];
    }
    metrics_.draws->Increment(out.size());
    return out.size();
  }
  // Without replacement the shuffled prefix is already a uniform sample:
  // copy the next run in one go.
  if (cursor_ >= matches_.size()) return 0;
  size_t n = std::min(out.size(), matches_.size() - cursor_);
  std::copy_n(matches_.begin() + static_cast<ptrdiff_t>(cursor_), n,
              out.begin());
  cursor_ += n;
  metrics_.draws->Increment(n);
  return n;
}

template <int D>
CardinalityEstimate QueryFirstSampler<D>::Cardinality() const {
  CardinalityEstimate c;
  if (began_) {
    c.lower = c.upper = matches_.size();
    c.exact = true;
    c.estimate = static_cast<double>(matches_.size());
  }
  return c;
}

template <int D>
bool QueryFirstSampler<D>::IsExhausted() const {
  if (!began_) return false;
  if (matches_.empty()) return true;
  return mode_ == SamplingMode::kWithoutReplacement && cursor_ >= matches_.size();
}

template class QueryFirstSampler<2>;
template class QueryFirstSampler<3>;

}  // namespace storm
