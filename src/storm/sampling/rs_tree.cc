#include "storm/sampling/rs_tree.h"

#include <unordered_set>

#include "storm/obs/metrics.h"
#include "storm/util/weighted_set.h"

namespace storm {

template <int D>
RsTree<D>::RsTree(std::vector<Entry> entries, RsTreeOptions options, uint64_t seed)
    : options_(options),
      tree_(RTree<D>::BulkLoadHilbert(std::move(entries), options.rtree)),
      rng_(seed) {
  if (options_.prefill && tree_.root() != nullptr) {
    PrefillRec(tree_.root());
  }
}

template <int D>
void RsTree<D>::PrefillRec(const Node* u) {
  Buffer& buf = buffers_[u];
  FillBuffer(u, &buf, &rng_);
  for (const auto& c : u->children) PrefillRec(c.get());
}

template <int D>
void RsTree<D>::FillBuffer(const Node* u, Buffer* buf, Rng* rng) const {
  buf->node_id = u->node_id;
  buf->version = u->version;
  buf->samples.clear();
  if (u->count == 0) return;
  size_t want = options_.EffectiveBufferSize();
  buf->samples.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    buf->samples.push_back(tree_.SampleSubtree(u, rng));
  }
}

template <int D>
typename RsTree<D>::Entry RsTree<D>::DrawFromNode(const Node* u) const {
  // A buffered pop costs one node touch (the buffer lives with u's page);
  // refills pay local random descents inside T(u).
  tree_.TouchNode(u);
  std::lock_guard<std::mutex> lock(*buffers_mutex_);
  Buffer& buf = buffers_[u];
  if (buf.node_id != u->node_id || buf.version != u->version ||
      buf.samples.empty()) {
    FillBuffer(u, &buf, &rng_);
  }
  Entry e = buf.samples.back();
  buf.samples.pop_back();
  return e;
}

template <int D>
typename RsTree<D>::Entry RsTree<D>::DrawFromNode(const Node* u,
                                                  LocalBuffers* local,
                                                  Rng* rng) const {
  tree_.TouchNode(u);
  Buffer& buf = local->buffers_[u];
  if (buf.node_id != u->node_id || buf.version != u->version ||
      buf.samples.empty()) {
    FillBuffer(u, &buf, rng);
  }
  Entry e = buf.samples.back();
  buf.samples.pop_back();
  return e;
}

template <int D>
void RsTree<D>::Insert(const Point<D>& point, RecordId id) {
  tree_.Insert(point, id);
  // Stale buffers self-invalidate via the version check in DrawFromNode.
}

template <int D>
bool RsTree<D>::Erase(const Point<D>& point, RecordId id) {
  bool erased = tree_.Erase(point, id);
  if (erased) {
    // Drop buffers whose node died (address reuse is caught by node_id, but
    // unbounded growth of dead keys is not); cheap periodic sweep.
    if (++erases_since_sweep_ >= 1024) {
      erases_since_sweep_ = 0;
      SweepDeadBuffers();
    }
  }
  return erased;
}

template <int D>
void RsTree<D>::SweepDeadBuffers() const {
  std::lock_guard<std::mutex> lock(*buffers_mutex_);
  std::unordered_set<const Node*> live;
  std::vector<const Node*> stack;
  if (tree_.root() != nullptr) stack.push_back(tree_.root());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    live.insert(n);
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (!live.contains(it->first)) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

namespace {

template <int D>
class RsTreeSampler final : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;
  using Node = typename RTree<D>::Node;

  RsTreeSampler(const RsTree<D>* index, Rng rng, bool shared_buffers,
                std::vector<const Node*> roots = {})
      : index_(index),
        rng_(rng),
        shared_buffers_(shared_buffers),
        roots_(std::move(roots)) {}

  Status Begin(const Rect<D>& query, SamplingMode mode) override {
    query_ = query;
    mode_ = mode;
    local_ = typename RsTree<D>::LocalBuffers();
    slots_.clear();
    weights_ = WeightedSet();
    residual_.clear();
    reported_.clear();
    covered_count_ = 0;
    partial_weight_ = 0;
    partial_count_ = 0;
    upper_bound_ = 0;
    began_ = true;
    metrics_ = GetSamplerCounters(this->name());
    metrics_.begins->Increment();
    residual_slot_ = weights_.Add(0.0);
    if (roots_.empty()) {
      const Node* root = index_->tree().root();
      if (root != nullptr && query.Intersects(root->mbr)) {
        AddNode(root);
      }
    } else {
      // Restricted sampler: the frontier starts at the given disjoint
      // subtree roots, so draws are uniform over their union ∩ Q.
      for (const Node* u : roots_) {
        if (u != nullptr && query.Intersects(u->mbr)) AddNode(u);
      }
    }
    return Status::OK();
  }

  std::optional<Entry> Next() override { return DrawOne(); }

  uint64_t NextBatch(std::span<Entry> out) override {
    uint64_t n = 0;
    for (Entry& slot : out) {
      std::optional<Entry> e = DrawOne();
      if (!e.has_value()) break;
      slot = *e;
      ++n;
    }
    return n;
  }

 private:
  // Shared draw path behind Next()/NextBatch(); non-virtual so the batched
  // loop pays one dispatch per batch, not per sample.
  std::optional<Entry> DrawOne() {
    if (!began_) return std::nullopt;
    while (true) {
      if (weights_.total() <= 0.0) return std::nullopt;  // frontier empty
      if (mode_ == SamplingMode::kWithoutReplacement &&
          reported_.size() >= UpperBound()) {
        return std::nullopt;  // provably exhausted
      }
      size_t slot = weights_.Sample(&rng_);
      if (slot == residual_slot_) {
        const Entry& e =
            residual_[static_cast<size_t>(rng_.Uniform(residual_.size()))];
        if (Accept(e)) {
          metrics_.draws->Increment();
          return e;
        }
        continue;
      }
      const Node* u = slots_[slot].node;
      Entry e = shared_buffers_ ? index_->DrawFromNode(u)
                                : index_->DrawFromNode(u, &local_, &rng_);
      if (slots_[slot].covered) {
        if (Accept(e)) {
          metrics_.draws->Increment();
          return e;
        }
        continue;
      }
      // Partially covered: acceptance/rejection against Q; rejection (or a
      // duplicate) triggers lazy expansion of exactly this node.
      if (query_.Contains(e.point) && Accept(e)) {
        metrics_.draws->Increment();
        return e;
      }
      Expand(slot);
    }
  }

 public:
  CardinalityEstimate Cardinality() const override {
    CardinalityEstimate c;
    if (!began_) return c;
    c.lower = covered_count_ + residual_.size();
    c.upper = UpperBound();
    c.exact = (partial_count_ == 0);
    // Midpoint heuristic until the frontier resolves.
    c.estimate = c.exact ? static_cast<double>(c.lower)
                         : (static_cast<double>(c.lower) +
                            static_cast<double>(c.upper)) /
                               2.0;
    return c;
  }

  bool IsExhausted() const override {
    if (!began_) return false;
    if (weights_.total() <= 0.0) return true;
    return mode_ == SamplingMode::kWithoutReplacement &&
           reported_.size() >= UpperBound();
  }

  std::string_view name() const override { return "RS-tree"; }

 private:
  struct Slot {
    const Node* node = nullptr;
    bool covered = false;
  };

  uint64_t UpperBound() const { return upper_bound_; }

  bool Accept(const Entry& e) {
    if (mode_ == SamplingMode::kWithoutReplacement) {
      return reported_.insert(e.id).second;
    }
    return true;
  }

  void AddNode(const Node* u) {
    bool covered = query_.Contains(u->mbr);
    size_t slot = weights_.Add(static_cast<double>(u->count));
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    slots_[slot] = Slot{u, covered};
    if (covered) {
      covered_count_ += u->count;
    } else {
      ++partial_count_;
      partial_weight_ += u->count;
    }
    upper_bound_ = covered_count_ + partial_weight_ + residual_.size();
  }

  void Expand(size_t slot) {
    const Node* u = slots_[slot].node;
    weights_.Update(slot, 0.0);
    slots_[slot].node = nullptr;
    --partial_count_;
    partial_weight_ -= u->count;
    if (u->is_leaf) {
      for (const Entry& e : u->entries) {
        if (query_.Contains(e.point)) residual_.push_back(e);
      }
      weights_.Update(residual_slot_, static_cast<double>(residual_.size()));
    } else {
      for (const auto& c : u->children) {
        if (query_.Intersects(c->mbr)) AddNode(c.get());
      }
    }
    upper_bound_ = covered_count_ + partial_weight_ + residual_.size();
  }

  const RsTree<D>* index_;
  Rng rng_;
  bool shared_buffers_ = true;
  std::vector<const Node*> roots_;  // empty → whole tree
  typename RsTree<D>::LocalBuffers local_;
  Rect<D> query_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  WeightedSet weights_;
  std::vector<Slot> slots_;  // indexed by weight slot; residual_slot_ unused
  size_t residual_slot_ = 0;
  std::vector<Entry> residual_;
  std::unordered_set<RecordId> reported_;
  uint64_t covered_count_ = 0;
  uint64_t partial_weight_ = 0;
  size_t partial_count_ = 0;
  uint64_t upper_bound_ = 0;
  bool began_ = false;
  SamplerCounters metrics_;
};

}  // namespace

template <int D>
std::unique_ptr<SpatialSampler<D>> RsTree<D>::NewSampler(Rng rng) const {
  return NewSampler(rng, /*shared_buffers=*/true);
}

template <int D>
std::unique_ptr<SpatialSampler<D>> RsTree<D>::NewSampler(
    Rng rng, bool shared_buffers) const {
  return std::make_unique<RsTreeSampler<D>>(this, rng, shared_buffers);
}

template <int D>
std::unique_ptr<SpatialSampler<D>> RsTree<D>::NewSampler(
    Rng rng, bool shared_buffers, std::vector<const Node*> roots) const {
  return std::make_unique<RsTreeSampler<D>>(this, rng, shared_buffers,
                                            std::move(roots));
}

template class RsTree<2>;
template class RsTree<3>;

}  // namespace storm
