// SampleFirst: pick a uniform point of P, keep it if it falls inside Q.
//
// Expected O(N/q) work per sample; excellent when the query covers a large
// constant fraction of the data, catastrophic otherwise, and non-terminating
// when q == 0 — so every Next() call is bounded by an attempt budget and the
// sampler reports failure instead of spinning forever.

#ifndef STORM_SAMPLING_SAMPLE_FIRST_H_
#define STORM_SAMPLING_SAMPLE_FIRST_H_

#include <unordered_set>
#include <vector>

#include "storm/sampling/sampler.h"
#include "storm/util/rng.h"

namespace storm {

template <int D>
class SampleFirstSampler : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;

  /// `data` is the raw point table (the record order is irrelevant); must
  /// outlive the sampler. `max_attempts_per_sample` bounds one Next() call;
  /// 0 picks a default of max(1024, 64·ceil(N / max(successes,1))) adapted
  /// from observed acceptance.
  SampleFirstSampler(const std::vector<Entry>* data, Rng rng,
                     uint64_t max_attempts_per_sample = 0);

  Status Begin(const Rect<D>& query,
               SamplingMode mode = SamplingMode::kWithReplacement) override;
  std::optional<Entry> Next() override;
  CardinalityEstimate Cardinality() const override;
  bool IsExhausted() const override;
  std::string_view name() const override { return "SampleFirst"; }

  /// True when the last Next() call gave up after exhausting its attempt
  /// budget (distinct from a clean without-replacement exhaustion).
  bool GaveUp() const { return gave_up_; }

  uint64_t total_attempts() const { return attempts_; }
  uint64_t total_hits() const { return hits_; }

 private:
  uint64_t AttemptBudget() const;

  const std::vector<Entry>* data_;
  Rng rng_;
  uint64_t max_attempts_;
  Rect<D> query_;
  SamplingMode mode_ = SamplingMode::kWithReplacement;
  std::unordered_set<RecordId> reported_;
  uint64_t attempts_ = 0;
  uint64_t hits_ = 0;
  bool gave_up_ = false;
  bool began_ = false;
};

extern template class SampleFirstSampler<2>;
extern template class SampleFirstSampler<3>;

}  // namespace storm

#endif  // STORM_SAMPLING_SAMPLE_FIRST_H_
