// SpatialSampler: the interface behind Definition 1 of the paper.
//
// Given a range query Q over an indexed point set P, a sampler returns
// independent uniform random samples from P ∩ Q, one at a time, until the
// caller stops asking. The number of samples k is never known in advance —
// callers (the online estimators) simply keep calling Next() until their
// stopping rule fires.

#ifndef STORM_SAMPLING_SAMPLER_H_
#define STORM_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "storm/geo/rect.h"
#include "storm/rtree/rtree.h"
#include "storm/util/status.h"

namespace storm {

/// Whether repeated samples may return the same record.
enum class SamplingMode {
  /// Independent draws; the same record can appear multiple times.
  kWithReplacement,
  /// Every returned record is distinct; the stream is exhausted after
  /// |P ∩ Q| samples.
  kWithoutReplacement,
};

/// What the sampler currently knows about q = |P ∩ Q|.
///
/// QueryFirst knows q exactly after Begin; LS-tree refines an estimate as it
/// descends levels; RS-tree narrows [lower, upper] as the frontier expands.
struct CardinalityEstimate {
  uint64_t lower = 0;
  uint64_t upper = ~uint64_t{0};
  /// True when lower == upper == q exactly.
  bool exact = false;
  /// Best point estimate (may be between the bounds, e.g. LS-tree's
  /// level-scaled estimate).
  double estimate = 0.0;
  /// True when part of the population became unreachable (a dead shard was
  /// evicted from a distributed stream): the sample stays uniform, but only
  /// over the live partition.
  bool degraded = false;
  /// Estimated fraction of qualifying records still reachable, q_alive / q.
  /// 1.0 for healthy single-node samplers.
  double coverage = 1.0;
};

/// Abstract spatial online sampler (Definition 1).
///
/// Usage: Begin(Q) once, then Next() repeatedly. Next() returns nullopt when
/// the stream is exhausted (without-replacement mode ran out of qualifying
/// records, or the strategy gave up — see IsExhausted/IsFailed).
template <int D>
class SpatialSampler {
 public:
  using Entry = typename RTree<D>::Entry;

  virtual ~SpatialSampler() = default;

  /// Starts a new online query; resets all per-query state.
  virtual Status Begin(const Rect<D>& query,
                       SamplingMode mode = SamplingMode::kWithReplacement) = 0;

  /// Draws the next online sample.
  virtual std::optional<Entry> Next() = 0;

  /// Current knowledge of q = |P ∩ Q|.
  virtual CardinalityEstimate Cardinality() const = 0;

  /// True when every qualifying record has been returned (only possible in
  /// without-replacement mode, or when q == 0).
  virtual bool IsExhausted() const = 0;

  /// Strategy name for logs, the optimizer and benchmarks.
  virtual std::string_view name() const = 0;
};

}  // namespace storm

#endif  // STORM_SAMPLING_SAMPLER_H_
