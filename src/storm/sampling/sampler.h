// SpatialSampler: the interface behind Definition 1 of the paper.
//
// Given a range query Q over an indexed point set P, a sampler returns
// independent uniform random samples from P ∩ Q, one at a time, until the
// caller stops asking. The number of samples k is never known in advance —
// callers (the online estimators) simply keep calling Next() until their
// stopping rule fires.

#ifndef STORM_SAMPLING_SAMPLER_H_
#define STORM_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "storm/geo/rect.h"
#include "storm/rtree/rtree.h"
#include "storm/util/status.h"

namespace storm {

/// Whether repeated samples may return the same record.
enum class SamplingMode {
  /// Independent draws; the same record can appear multiple times.
  kWithReplacement,
  /// Every returned record is distinct; the stream is exhausted after
  /// |P ∩ Q| samples.
  kWithoutReplacement,
};

/// What the sampler currently knows about q = |P ∩ Q|.
///
/// QueryFirst knows q exactly after Begin; LS-tree refines an estimate as it
/// descends levels; RS-tree narrows [lower, upper] as the frontier expands.
struct CardinalityEstimate {
  uint64_t lower = 0;
  uint64_t upper = ~uint64_t{0};
  /// True when lower == upper == q exactly.
  bool exact = false;
  /// Best point estimate (may be between the bounds, e.g. LS-tree's
  /// level-scaled estimate).
  double estimate = 0.0;
  /// True when part of the population became unreachable (a dead shard was
  /// evicted from a distributed stream): the sample stays uniform, but only
  /// over the live partition.
  bool degraded = false;
  /// Estimated fraction of qualifying records still reachable, q_alive / q.
  /// 1.0 for healthy single-node samplers.
  double coverage = 1.0;

  /// Restores the invariant lower <= estimate <= upper (samplers call this
  /// before returning; tests assert it). An estimate of 0 with a positive
  /// lower bound means the sampler never filled it in — snap to the bounds.
  CardinalityEstimate& Clamp() {
    if (estimate < static_cast<double>(lower)) {
      estimate = static_cast<double>(lower);
    }
    if (estimate > static_cast<double>(upper)) {
      estimate = static_cast<double>(upper);
    }
    return *this;
  }
};

/// Abstract spatial online sampler (Definition 1).
///
/// Usage: Begin(Q) once, then Next() repeatedly. Next() returns nullopt when
/// the stream is exhausted (without-replacement mode ran out of qualifying
/// records, or the strategy gave up — see IsExhausted/IsFailed).
template <int D>
class SpatialSampler {
 public:
  using Entry = typename RTree<D>::Entry;

  virtual ~SpatialSampler() = default;

  /// Starts a new online query; resets all per-query state.
  virtual Status Begin(const Rect<D>& query,
                       SamplingMode mode = SamplingMode::kWithReplacement) = 0;

  /// Draws the next online sample.
  ///
  /// Kept for one release as the single-draw convenience path; hot loops
  /// (the evaluator, the estimator feeds) call NextBatch instead, which
  /// costs one virtual dispatch per batch rather than per sample. See
  /// docs/API.md §Batch-first sampling for the migration note.
  virtual std::optional<Entry> Next() = 0;

  /// Draws up to out.size() samples into `out`; returns the number written.
  /// A short return means the stream stalled or exhausted (check
  /// IsExhausted) — callers may keep re-invoking until 0.
  ///
  /// The default implementation loops Next(); RS-tree, QueryFirst, the
  /// distributed merger, and the stratified engine override it with a
  /// native batched draw.
  virtual uint64_t NextBatch(std::span<Entry> out) {
    uint64_t n = 0;
    for (Entry& slot : out) {
      std::optional<Entry> e = Next();
      if (!e.has_value()) break;
      slot = *e;
      ++n;
    }
    return n;
  }

  /// Current knowledge of q = |P ∩ Q|.
  virtual CardinalityEstimate Cardinality() const = 0;

  /// Number of disjoint strata this sampler partitions P ∩ Q into. Uniform
  /// samplers are a single stratum; the stratified engine reports its
  /// canonical-set partition.
  virtual size_t Strata() const { return 1; }

  /// Per-stratum cardinality (stratum < Strata()). Single-stratum samplers
  /// report the whole-query estimate.
  virtual CardinalityEstimate Cardinality(size_t stratum) const {
    (void)stratum;
    return Cardinality();
  }

  /// True when every qualifying record has been returned (only possible in
  /// without-replacement mode, or when q == 0).
  virtual bool IsExhausted() const = 0;

  /// Strategy name for logs, the optimizer and benchmarks.
  virtual std::string_view name() const = 0;
};

}  // namespace storm

#endif  // STORM_SAMPLING_SAMPLER_H_
