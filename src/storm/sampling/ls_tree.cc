#include "storm/sampling/ls_tree.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "storm/obs/metrics.h"

namespace storm {

namespace {

// Salted record-id hash mapped to (0, 1]; drives level membership.
double HashToUnit(RecordId id, uint64_t seed) {
  uint64_t state = id ^ (seed * 0x9e3779b97f4a7c15ULL);
  uint64_t h = SplitMix64(state);
  // (h + 1) / 2^64 lies in (0, 1].
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

// Highest level the record belongs to: P(level >= i) = ratio^i.
int HashLevel(RecordId id, uint64_t seed, double ratio) {
  double u = HashToUnit(id, seed);
  if (u >= 1.0) return 0;
  double lvl = std::log(u) / std::log(ratio);
  // Guard against absurd levels from tiny hashes.
  return static_cast<int>(std::min(lvl, 62.0));
}

}  // namespace

template <int D>
LsTree<D>::LsTree(std::vector<Entry> entries, LsTreeOptions options, uint64_t seed)
    : options_(options), seed_(seed) {
  assert(options_.level_ratio > 0.0 && options_.level_ratio < 1.0);
  // Number of levels: expected size of level i is N * ratio^i; stop before
  // it drops below min_level_size (always at least one level).
  size_t n = entries.size();
  int levels = 1;
  double expected = static_cast<double>(n) * options_.level_ratio;
  while (expected >= static_cast<double>(options_.min_level_size) && levels < 40) {
    ++levels;
    expected *= options_.level_ratio;
  }
  std::vector<std::vector<Entry>> per_level(static_cast<size_t>(levels));
  per_level[0] = std::move(entries);
  for (const Entry& e : per_level[0]) {
    int lvl = std::min(HashLevel(e.id, seed_, options_.level_ratio), levels - 1);
    for (int i = 1; i <= lvl; ++i) {
      per_level[static_cast<size_t>(i)].push_back(e);
    }
  }
  trees_.reserve(static_cast<size_t>(levels));
  for (auto& level_entries : per_level) {
    trees_.push_back(RTree<D>::BulkLoadStr(std::move(level_entries), options_.rtree));
  }
}

template <int D>
int LsTree<D>::LevelOf(RecordId id) const {
  return std::min(HashLevel(id, seed_, options_.level_ratio), num_levels() - 1);
}

template <int D>
void LsTree<D>::Insert(const Point<D>& point, RecordId id) {
  // Grow a new (empty) top level when level 0 outgrew the schedule; newly
  // inserted high-level records will populate it.
  double expected_top = static_cast<double>(trees_[0].size());
  for (int i = 1; i < num_levels(); ++i) expected_top *= options_.level_ratio;
  if (expected_top * options_.level_ratio >=
          static_cast<double>(options_.min_level_size) &&
      num_levels() < 40) {
    trees_.push_back(RTree<D>(options_.rtree));
  }
  int lvl = LevelOf(id);
  for (int i = 0; i <= lvl; ++i) {
    trees_[static_cast<size_t>(i)].Insert(point, id);
  }
}

template <int D>
bool LsTree<D>::Erase(const Point<D>& point, RecordId id) {
  int lvl = LevelOf(id);
  bool found = trees_[0].Erase(point, id);
  if (!found) return false;
  for (int i = 1; i <= lvl; ++i) {
    trees_[static_cast<size_t>(i)].Erase(point, id);
  }
  return true;
}

template <int D>
uint64_t LsTree<D>::nodes_touched() const {
  uint64_t total = 0;
  for (const auto& t : trees_) total += t.nodes_touched();
  return total;
}

template <int D>
void LsTree<D>::ResetTouchCount() const {
  for (const auto& t : trees_) t.ResetTouchCount();
}

template <int D>
uint64_t LsTree<D>::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& t : trees_) total += t.size();
  return total;
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

namespace {

template <int D>
class LsTreeSampler final : public SpatialSampler<D> {
 public:
  using Entry = typename RTree<D>::Entry;

  LsTreeSampler(const LsTree<D>* index, Rng rng, double level_ratio)
      : index_(index), rng_(rng), level_ratio_(level_ratio) {}

  Status Begin(const Rect<D>& query, SamplingMode mode) override {
    if (mode == SamplingMode::kWithReplacement) {
      return Status::NotSupported(
          "LS-tree sampling is without-replacement; wrap with an estimator "
          "that applies the finite population correction");
    }
    query_ = query;
    reported_.clear();
    buffer_.clear();
    cursor_ = 0;
    level_ = index_->num_levels();  // first LoadNextLevel() moves to top level
    level_matches_ = 0;
    began_ = true;
    metrics_ = GetSamplerCounters(this->name());
    metrics_.begins->Increment();
    return Status::OK();
  }

  std::optional<Entry> Next() override {
    if (!began_) return std::nullopt;
    while (cursor_ >= buffer_.size()) {
      if (level_ == 0) return std::nullopt;  // level 0 consumed: exhausted
      LoadNextLevel();
    }
    const Entry& e = buffer_[cursor_++];
    reported_.insert(e.id);
    metrics_.draws->Increment();
    return e;
  }

  CardinalityEstimate Cardinality() const override {
    CardinalityEstimate c;
    if (!began_ || level_ >= index_->num_levels()) return c;
    c.lower = reported_.size();
    c.exact = (level_ == 0);
    if (c.exact) {
      // Level 0 reports P ∩ Q exactly: buffer_ holds every remaining match
      // and reported_ the rest.
      c.lower = c.upper = buffer_.size() + reported_set_size_at_level0_;
      c.estimate = static_cast<double>(c.lower);
      return c;
    }
    // Scale the level-i match count by the inverse sampling rate. The
    // scaled estimate can undershoot the records already reported on a
    // lucky stream; Clamp restores lower <= estimate <= upper.
    double rate = std::pow(level_ratio_, level_);
    c.estimate = static_cast<double>(level_matches_) / rate;
    c.upper = index_->size();
    return c.Clamp();
  }

  bool IsExhausted() const override {
    return began_ && level_ == 0 && cursor_ >= buffer_.size();
  }

  std::string_view name() const override { return "LS-tree"; }

 private:
  void LoadNextLevel() {
    --level_;
    std::vector<Entry> matches =
        index_->tree(level_).RangeReport(query_);
    level_matches_ = matches.size();
    if (level_ == 0) reported_set_size_at_level0_ = reported_.size();
    // Drop records already reported from higher levels (P_{i+1} ⊆ P_i).
    buffer_.clear();
    buffer_.reserve(matches.size());
    for (const Entry& e : matches) {
      if (!reported_.contains(e.id)) buffer_.push_back(e);
    }
    cursor_ = 0;
    rng_.Shuffle(buffer_);
  }

  const LsTree<D>* index_;
  Rng rng_;
  double level_ratio_;
  Rect<D> query_;
  std::unordered_set<RecordId> reported_;
  std::vector<Entry> buffer_;
  size_t cursor_ = 0;
  int level_ = 0;
  size_t level_matches_ = 0;
  size_t reported_set_size_at_level0_ = 0;
  bool began_ = false;
  SamplerCounters metrics_;
};

}  // namespace

template <int D>
std::unique_ptr<SpatialSampler<D>> LsTree<D>::NewSampler(Rng rng) const {
  return std::make_unique<LsTreeSampler<D>>(this, rng, options_.level_ratio);
}

template class LsTree<2>;
template class LsTree<3>;

}  // namespace storm
