// The demo's "data import" component: bring a foreign data set into STORM
// through the data connector — write a CSV and a JSON-lines file, import
// both, inspect the discovered schema and spatio-temporal binding, and
// immediately run online queries against them.

#include <cstdio>
#include <fstream>

#include "storm/storm.h"

int main() {
  using namespace storm;

  // Fabricate two "foreign" files, standing in for a spreadsheet export and
  // a MongoDB dump.
  const std::string csv_path = "/tmp/storm_example_stations.csv";
  {
    Rng rng(99);
    std::ofstream out(csv_path);
    out << "station,latitude,longitude,date,temp_c\n";
    for (int i = 0; i < 3000; ++i) {
      int day = 1 + static_cast<int>(rng.Uniform(28));
      out << "S" << (i % 100) << "," << rng.UniformDouble(35, 45) << ","
          << rng.UniformDouble(-120, -100) << ",2014-02-"
          << (day < 10 ? "0" : "") << day << ","
          << rng.Normal(-2.0, 6.0) << "\n";
    }
  }
  const std::string jsonl_path = "/tmp/storm_example_events.jsonl";
  {
    Rng rng(101);
    std::ofstream out(jsonl_path);
    for (int i = 0; i < 2000; ++i) {
      out << "{\"geo\":{\"lat\":" << rng.UniformDouble(30, 48)
          << ",\"lon\":" << rng.UniformDouble(-120, -75)
          << "},\"ts\":" << (1391212800 + rng.Uniform(2592000))
          << ",\"severity\":" << rng.Uniform(5) << "}\n";
    }
  }

  Session session;

  // Import the CSV. Schema discovery types each column and binds
  // (longitude, latitude, date) as the spatio-temporal axes.
  Status st = session.ImportFile("stations", csv_path);
  if (!st.ok()) {
    std::fprintf(stderr, "csv import: %s\n", st.ToString().c_str());
    return 1;
  }
  auto stations = session.GetTable("stations");
  std::printf("imported CSV: %s\n", (*stations)->schema().ToString().c_str());
  std::printf("  binding: x=%s y=%s t=%s\n",
              (*stations)->binding().x_field.c_str(),
              (*stations)->binding().y_field.c_str(),
              (*stations)->binding().t_field.c_str());

  auto avg = session.Execute(
      "SELECT AVG(temp_c) FROM stations REGION(-115, 37, -105, 43) "
      "TIME('2014-02-05', '2014-02-20') ERROR 10% CONFIDENCE 95%");
  if (avg.ok()) {
    std::printf("  online AVG(temp_c) in a window: %s (%llu samples)\n",
                avg->ci.ToString().c_str(),
                static_cast<unsigned long long>(avg->samples));
  }

  // Import the JSON-lines file: nested coordinates are discovered through
  // dotted paths (geo.lat / geo.lon), the epoch field as time.
  st = session.ImportFile("events", jsonl_path);
  if (!st.ok()) {
    std::fprintf(stderr, "jsonl import: %s\n", st.ToString().c_str());
    return 1;
  }
  auto events = session.GetTable("events");
  std::printf("imported JSONL: %s\n", (*events)->schema().ToString().c_str());
  std::printf("  binding: x=%s y=%s t=%s\n",
              (*events)->binding().x_field.c_str(),
              (*events)->binding().y_field.c_str(),
              (*events)->binding().t_field.c_str());
  auto count = session.Execute(
      "SELECT COUNT(*) FROM events REGION(-110, 33, -90, 44) USING RSTREE "
      "SAMPLES 500");
  if (count.ok()) {
    std::printf("  online COUNT(*) in a window: %s\n",
                count->ci.ToString().c_str());
  }

  // Index-in-place mode: keep the documents outside STORM's storage engine
  // and only build the index (the connector's second mode in the demo).
  auto docs = ParseJsonlFile(jsonl_path);
  if (docs.ok()) {
    Importer indexer(nullptr);  // no record store: index in place
    auto indexed = indexer.ImportDocuments(*docs);
    if (indexed.ok()) {
      RsTree<3> rs(indexed->entries, {}, 7);
      std::printf(
          "index-in-place: built RS-tree over %llu externally-owned docs\n",
          static_cast<unsigned long long>(rs.size()));
    }
  }

  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
  return 0;
}
