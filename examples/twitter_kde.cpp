// Fig 5 demo scenario: online population-density estimation (KDE) over
// geotagged tweets, rendered as ASCII density maps that visibly sharpen as
// online samples accumulate — first at a city zoom, then zoomed out to the
// whole country, like the SLC -> USA walkthrough in the paper.

#include <cstdio>
#include <string>

#include "storm/storm.h"

namespace {

void RunZoom(storm::Session& session, const char* label,
             const std::string& region_clause) {
  using namespace storm;
  std::printf("\n=== %s ===\n", label);
  for (uint64_t samples : {200u, 5000u}) {
    auto result = session.Execute("SELECT KDE(56, 18) FROM tweets " +
                                  region_clause + " SAMPLES " +
                                  std::to_string(samples));
    if (!result.ok()) {
      std::fprintf(stderr, "kde failed: %s\n",
                   result.status().ToString().c_str());
      return;
    }
    std::printf("after %llu samples (%.1f ms, max cell CI half-width %.4f):\n",
                static_cast<unsigned long long>(result->samples),
                result->elapsed_ms, result->kde_max_half_width);
    std::printf("%s", RenderHeatmap(result->kde_map, result->kde_width,
                                    result->kde_height)
                          .c_str());
    // Also export the refined map as an image (the non-terminal view).
    if (samples > 1000) {
      std::string pgm = std::string("/tmp/storm_kde_") +
                        (label[0] == 'c' ? "city" : "usa") + ".pgm";
      if (WritePgm(pgm, result->kde_map, result->kde_width, result->kde_height)
              .ok()) {
        std::printf("  (density image written to %s)\n", pgm.c_str());
      }
    }
  }
}

}  // namespace

int main() {
  using namespace storm;

  TweetOptions options;
  options.num_tweets = 150'000;
  TweetGenerator gen(options);
  std::vector<Value> docs;
  for (const Tweet& t : gen.Generate()) {
    docs.push_back(TweetGenerator::ToDocument(t));
  }
  Session session;
  Status st = session.CreateTable("tweets", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu tweets\n", docs.size());

  RunZoom(session, "city zoom (around Atlanta)",
          "REGION(-86.6, 32.0, -82.1, 35.5)");
  RunZoom(session, "national zoom (zoomed out)",
          "REGION(-125, 24, -66, 49)");

  std::printf(
      "\nThe density map's hot spots stay put while the noise floor\n"
      "cleans up with more samples — the online-refinement effect the\n"
      "demo shows on the live map.\n");
  return 0;
}
