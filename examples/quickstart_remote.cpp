// Remote quickstart: the quickstart's online aggregate, but over the wire.
// Starts a storm_server in-process on an ephemeral port, connects a
// RemoteClient, and watches the streamed PROGRESS frames tighten the
// confidence interval — the same anytime-result contract as the in-process
// Client, now network-transparent.
//
//   cmake --build build && ./build/examples/quickstart_remote
//
// Against a real deployment, replace the embedded server with
//   db.Connect("analytics-host", 4317);
// (see docs/SERVER.md for the protocol and storm_server for the binary).

#include <cstdio>

#include "storm/client.h"
#include "storm/data/osm_gen.h"
#include "storm/server/remote_client.h"
#include "storm/server/server.h"

int main() {
  using namespace storm;

  // 1. A serving process: a Session with data, wrapped by StormServer.
  //    (In production this is the storm_server binary on another host.)
  OsmOptions gen_options;
  gen_options.num_points = 100'000;
  OsmLikeGenerator gen(gen_options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }
  Session session;
  Status st = session.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }
  StormServer server(&session);  // port 0: ephemeral
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("storm_server on 127.0.0.1:%d\n", server.port());

  // 2. A client anywhere on the network. Connect() verifies liveness with a
  //    PING round trip.
  RemoteClient db;
  st = db.Connect("127.0.0.1", server.port());
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. The same online aggregate as the local quickstart. The progress
  //    callback is now fed by streamed PROGRESS frames; the server throttles
  //    them to the client-chosen cadence.
  db.set_progress_interval_ms(10);
  auto result = db.Execute(
      "SELECT AVG(altitude) FROM osm REGION(-114, 35, -104, 45) "
      "ERROR 0.5% CONFIDENCE 95%",
      ExecOptions().WithProgress([](const QueryProgress& p) {
        std::printf("  k=%6llu  t=%7.2fms  estimate=%s\n",
                    static_cast<unsigned long long>(p.samples), p.elapsed_ms,
                    p.ci.ToString().c_str());
        return true;  // false would CANCEL and return the best-so-far result
      }));
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("final: %s after %llu samples (%s)\n",
              result->ci.ToString().c_str(),
              static_cast<unsigned long long>(result->samples),
              result->strategy.c_str());

  // 4. Updates travel the same connection; the next query sees them.
  Value doc = *Value::Parse(
      R"({"lon": -110.0, "lat": 40.0, "altitude": 3000.0, "timestamp": 0})");
  auto inserted = db.Insert("osm", doc);
  std::printf("insert: %s\n",
              inserted.ok() ? "ok" : inserted.status().ToString().c_str());

  // 5. The server's own view of the traffic it just served.
  auto metrics = db.Metrics();
  if (metrics.ok()) {
    std::printf("server metrics contain storm_server_queries_total: %s\n",
                metrics->find("storm_server_queries_total") != std::string::npos
                    ? "yes"
                    : "no");
  }

  db.Close();
  server.Stop();
  return 0;
}
