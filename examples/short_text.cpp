// Fig 6(b) demo scenario: online short-text understanding during the
// Atlanta snowstorm (Feb 10-13, 2014). Zoom a spatio-temporal window onto
// downtown Atlanta during the storm and watch the event vocabulary (snow,
// ice, outage, shit, hell, why...) surface from the sampled tweets — then
// cross-check with the weather data, the paper's multi-source angle.

#include <cstdio>

#include "storm/storm.h"

int main() {
  using namespace storm;

  TweetOptions tweet_options;
  tweet_options.num_tweets = 150'000;
  TweetGenerator tweet_gen(tweet_options);
  std::vector<Value> tweet_docs;
  for (const Tweet& t : tweet_gen.Generate()) {
    tweet_docs.push_back(TweetGenerator::ToDocument(t));
  }

  WeatherOptions weather_options;
  weather_options.num_stations = 500;
  weather_options.readings_per_station = 120;
  WeatherGenerator weather_gen(weather_options);
  auto stations = weather_gen.GenerateStations();
  std::vector<Value> weather_docs;
  for (const WeatherReading& r : weather_gen.GenerateReadings(stations)) {
    weather_docs.push_back(WeatherGenerator::ToDocument(r));
  }

  Session session;
  Status st = session.CreateTable("tweets", tweet_docs);
  if (st.ok()) st = session.CreateTable("mesowest", weather_docs);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu tweets and %zu weather readings\n",
              tweet_docs.size(), weather_docs.size());

  const char* window =
      "REGION(-84.6, 33.5, -84.1, 34.0) "
      "TIME('2014-02-10 06:00:00', '2014-02-13 12:00:00')";

  // 1. Confirm the storm in the measurement network (integrated
  //    multi-source analytics).
  auto temp = session.Execute(std::string("SELECT AVG(temperature) FROM "
                                          "mesowest ") +
                              window + " SAMPLES 4000");
  if (temp.ok() && temp->samples > 0) {
    std::printf("\nMesoWest says avg temperature in the window: %s degC\n",
                temp->ci.ToString().c_str());
  } else {
    std::printf("\nMesoWest window had no station readings (sparse grid)\n");
  }

  // 2. Online top terms from the tweets, refining over time.
  for (uint64_t budget : {100u, 500u, 5000u}) {
    auto result = session.Execute(
        std::string("SELECT TOPTERMS(10, text) FROM tweets ") + window +
        " SAMPLES " + std::to_string(budget));
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nafter %llu sampled tweets (%.1f ms):\n",
                static_cast<unsigned long long>(result->samples),
                result->elapsed_ms);
    for (const TermEstimate& t : result->terms) {
      std::printf("  %-12s in %5.1f%% ± %.1f%% of tweets\n", t.term.c_str(),
                  t.frequency.estimate * 100, t.frequency.half_width * 100);
    }
  }

  // 3. Contrast: the same analysis over a calm window elsewhere.
  auto calm = session.Execute(
      "SELECT TOPTERMS(5, text) FROM tweets REGION(-120, 35, -110, 45) "
      "TIME('2014-02-10', '2014-02-13') SAMPLES 2000");
  if (calm.ok()) {
    std::printf("\nfor contrast, a calm window out west:");
    for (const TermEstimate& t : calm->terms) {
      std::printf(" %s", t.term.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
