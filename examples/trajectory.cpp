// Fig 6(a) demo scenario: online approximate trajectory construction — pick
// one twitter user and rebuild their movement path from online samples of
// their geotagged tweets, printing the reconstruction as it refines.

#include <cstdio>

#include "storm/storm.h"

int main() {
  using namespace storm;

  TweetOptions options;
  options.num_tweets = 120'000;
  options.num_users = 150;
  TweetGenerator gen(options);
  auto tweets = gen.Generate();
  std::vector<Value> docs;
  for (const Tweet& t : tweets) docs.push_back(TweetGenerator::ToDocument(t));
  Session session;
  Status st = session.CreateTable("tweets", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }

  const int64_t user = 11;
  uint64_t user_tweets = 0;
  for (const Tweet& t : tweets) user_tweets += t.user == user;
  std::printf("reconstructing user %lld's path (%llu true fixes) over a year\n",
              static_cast<long long>(user),
              static_cast<unsigned long long>(user_tweets));

  // Two time scopes, like narrowing the demo's time slider.
  for (const char* time_clause :
       {"TIME('2013-07-01', '2014-07-01')", "TIME('2014-01-01', '2014-03-01')"}) {
    std::printf("\nwindow %s\n", time_clause);
    for (uint64_t budget : {2000u, 20000u}) {
      auto result = session.Execute(
          "SELECT TRAJECTORY(user, " + std::to_string(user) + ") FROM tweets " +
          time_clause + " SAMPLES " + std::to_string(budget));
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("  %6llu draws -> %3zu fixes (%.1f ms)",
                  static_cast<unsigned long long>(result->samples),
                  result->trajectory.size(), result->elapsed_ms);
      if (result->trajectory.size() >= 2) {
        // Print a sparse polyline preview.
        std::printf("  path: ");
        size_t step = std::max<size_t>(1, result->trajectory.size() / 5);
        for (size_t i = 0; i < result->trajectory.size(); i += step) {
          const TimedPoint& f = result->trajectory[i];
          std::printf("(%.1f,%.1f) ", f.position[0], f.position[1]);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nMore samples add intermediate fixes, so the polyline converges to\n"
      "the user's true movement — the online refinement of Fig 6(a).\n");
  return 0;
}
