// storm_shell: an interactive console analogue of the STORM demo UI
// (Figure 4). Loads the synthetic demo data sets (tweets, weather,
// electricity), then reads queries in the STORM query language from stdin
// and streams online estimates while each query runs.
//
//   ./build/examples/storm_shell
//   storm> SELECT AVG(temperature) FROM mesowest REGION(-120,30,-90,45)
//          TIME('2014-02-01','2014-03-01') ERROR 2%
//   storm> SELECT TOPTERMS(10, text) FROM tweets
//          REGION(-84.6,33.5,-84.1,34.0) TIME('2014-02-10','2014-02-13')
//   storm> \tables
//   storm> \quit
//
// Point the shell at a running storm_server instead of the in-process
// session with `\connect host:port`; queries then stream over the wire
// with the same progress rendering (`\disconnect` returns to local mode).
//
// Non-interactive use: pipe queries in, one per line.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "storm/storm.h"

namespace {

using namespace storm;

void PrintResult(const QueryResult& result) {
  if (result.explain_only) {
    std::printf("  plan: %s (%s)\n", result.strategy.c_str(),
                result.decision.reason.c_str());
    std::printf("  estimated q=%.0f  selectivity=%.4f%%\n",
                result.decision.estimated_cardinality,
                result.decision.estimated_selectivity * 100);
    return;
  }
  switch (result.task) {
    case QueryTask::kAggregate:
      if (result.groups.empty()) {
        std::printf("  = %s\n", result.ci.ToString().c_str());
      } else {
        for (const GroupRow& g : result.groups) {
          std::printf("  %8lld  %s  (group size ~%.0f)\n",
                      static_cast<long long>(g.key), g.ci.ToString().c_str(),
                      g.group_size.estimate);
        }
      }
      break;
    case QueryTask::kQuantile:
      std::printf("  = %s  [%.4f, %.4f]\n", result.ci.ToString().c_str(),
                  result.ci_lower, result.ci_upper);
      break;
    case QueryTask::kKde:
      std::printf("  density map %dx%d, max cell CI half-width %.5f\n",
                  result.kde_width, result.kde_height,
                  result.kde_max_half_width);
      std::printf("%s", RenderHeatmap(result.kde_map, result.kde_width,
                                      result.kde_height)
                            .c_str());
      break;
    case QueryTask::kTopTerms:
      for (const TermEstimate& t : result.terms) {
        std::printf("  %-16s %5.1f%% ± %.1f%%\n", t.term.c_str(),
                    t.frequency.estimate * 100, t.frequency.half_width * 100);
      }
      break;
    case QueryTask::kCluster:
      for (size_t c = 0; c < result.centers.size(); ++c) {
        std::printf("  center %zu: %s\n", c, result.centers[c].ToString().c_str());
      }
      std::printf("  inertia: %.2f\n", result.inertia);
      break;
    case QueryTask::kTrajectory:
      std::printf("  %zu fixes:", result.trajectory.size());
      for (size_t i = 0; i < result.trajectory.size(); i += std::max<size_t>(
               1, result.trajectory.size() / 8)) {
        std::printf(" (%.2f, %.2f)", result.trajectory[i].position[0],
                    result.trajectory[i].position[1]);
      }
      std::printf("\n");
      break;
  }
  std::printf("  [%llu samples, %.1f ms, %s%s%s]\n",
              static_cast<unsigned long long>(result.samples),
              result.elapsed_ms, result.strategy.c_str(),
              result.exhausted ? ", exact" : "",
              result.cancelled ? ", cancelled" : "");
}

}  // namespace

int main() {
  Session session;

  std::printf("loading demo data sets...\n");
  {
    TweetOptions o;
    o.num_tweets = 100'000;
    TweetGenerator gen(o);
    std::vector<Value> docs;
    for (const Tweet& t : gen.Generate()) docs.push_back(TweetGenerator::ToDocument(t));
    (void)session.CreateTable("tweets", docs);
  }
  {
    WeatherOptions o;
    o.num_stations = 400;
    o.readings_per_station = 96;
    WeatherGenerator gen(o);
    auto stations = gen.GenerateStations();
    std::vector<Value> docs;
    for (const WeatherReading& r : gen.GenerateReadings(stations)) {
      docs.push_back(WeatherGenerator::ToDocument(r));
    }
    (void)session.CreateTable("mesowest", docs);
  }
  {
    ElectricityOptions o;
    o.num_units = 1000;
    o.readings_per_unit = 60;
    ElectricityGenerator gen(o);
    std::vector<Value> docs;
    for (const ElectricityReading& r : gen.Generate()) {
      docs.push_back(ElectricityGenerator::ToDocument(r));
    }
    // The electricity feed doubles as the durability demo: updates are
    // WAL-logged, and \checkpoint/\crash/\recover work against it.
    TableConfig durable;
    durable.durable = true;
    (void)session.CreateTable("electricity", docs, {}, durable);
  }
  std::printf("tables:");
  for (const std::string& name : session.TableNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(
      "\ntype a STORM query, \\tables, \\metrics, \\profile, \\checkpoint,"
      " \\crash, \\recover, \\help or \\quit\n");

  std::string line;
  std::shared_ptr<QueryProfile> last_profile;
  RemoteClient remote;
  // STORM_TRACE_SAMPLE_RATE overrides the client's 1% trace-sampling
  // default — lets scripted runs (CI diagnostics checks) sample at 100%.
  if (const char* rate_env = std::getenv("STORM_TRACE_SAMPLE_RATE")) {
    remote.set_trace_sample_rate(std::atof(rate_env));
  }
  while (true) {
    std::printf(remote.connected() ? "storm(remote)> " : "storm> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const std::string& name : session.TableNames()) {
        auto table = session.GetTable(name);
        if (table.ok()) {
          std::printf("  %-12s %8llu records  schema %s\n", name.c_str(),
                      static_cast<unsigned long long>((*table)->size()),
                      (*table)->schema().ToString().c_str());
        }
      }
      continue;
    }
    if (line == "\\help") {
      std::printf(
          "  [EXPLAIN] SELECT AVG|SUM|COUNT|MIN|MAX|VARIANCE|STDDEV(attr|*)\n"
          "  SELECT MEDIAN(attr) | QUANTILE(p, attr) FROM t\n"
          "  SELECT KDE(w, h) | TOPTERMS(m, field) | CLUSTER(k)\n"
          "       | TRAJECTORY(field, id) FROM t\n"
          "  clauses: REGION(x1,y1,x2,y2) TIME('from','to')\n"
          "           GROUP BY field | GROUP BY CELL(nx, ny)\n"
          "           CONFIDENCE 95%% ERROR 2%% WITHIN 500 MS SAMPLES n\n"
          "           USING RSTREE|LSTREE|RANDOMPATH|QUERYFIRST|SAMPLEFIRST\n"
          "  \\connect host:port   run queries against a storm_server\n"
          "  \\disconnect          return to the in-process session\n"
          "  \\metrics  process-wide counters (Prometheus text format;\n"
          "            the server's counters while connected)\n"
          "  \\profile  span/IO/convergence trace of the last query\n"
          "  \\checkpoint <table>  flush + truncate the WAL (durable tables)\n"
          "  \\crash <table>       simulate power loss (drops unsynced pages)\n"
          "  \\recover <table>     rebuild from checkpoint + WAL replay\n");
      continue;
    }
    if (line.rfind("\\connect ", 0) == 0) {
      std::string target = line.substr(9);
      size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon + 1 >= target.size()) {
        std::printf("  usage: \\connect host:port\n");
        continue;
      }
      int port = std::atoi(target.c_str() + colon + 1);
      Status st = remote.Connect(target.substr(0, colon), port);
      std::printf("  %s\n", st.ok() ? "connected (queries now run remotely)"
                                    : st.ToString().c_str());
      continue;
    }
    if (line == "\\disconnect") {
      remote.Close();
      std::printf("  back to the in-process session\n");
      continue;
    }
    if (line.rfind("\\checkpoint ", 0) == 0) {
      Status st = remote.connected() ? remote.Checkpoint(line.substr(12))
                                     : session.Checkpoint(line.substr(12));
      std::printf("  %s\n", st.ok() ? "checkpoint complete" : st.ToString().c_str());
      continue;
    }
    if (line.rfind("\\crash ", 0) == 0) {
      Status st = session.SimulateCrash(line.substr(7));
      std::printf("  %s\n", st.ok() ? "crashed (table dropped; \\recover to rebuild)"
                                    : st.ToString().c_str());
      continue;
    }
    if (line.rfind("\\recover ", 0) == 0) {
      Status st = session.Recover(line.substr(9));
      std::printf("  %s\n", st.ok() ? "recovered" : st.ToString().c_str());
      continue;
    }
    if (line == "\\metrics") {
      if (remote.connected()) {
        auto text = remote.Metrics();
        if (text.ok()) {
          std::printf("%s", text->c_str());
        } else {
          std::printf("  error: %s\n", text.status().ToString().c_str());
        }
      } else {
        std::printf("%s",
                    MetricsRegistry::Default().ExposePrometheus().c_str());
        // Derived latency quantiles (interpolated from histogram buckets) —
        // the at-a-glance numbers the raw exposition buries in _bucket lines.
        std::string quantiles =
            MetricsRegistry::Default().HistogramQuantilesText();
        if (!quantiles.empty()) {
          std::printf("\nderived quantiles:\n%s", quantiles.c_str());
        }
      }
      continue;
    }
    if (line == "\\profile") {
      if (last_profile == nullptr) {
        std::printf("  no query profiled yet\n");
      } else {
        std::printf("%s", last_profile->ToString().c_str());
      }
      continue;
    }
    uint64_t last_reported = 0;
    ExecOptions options = ExecOptions().WithProgress([&](const QueryProgress& p) {
      if (p.samples >= last_reported + 2048) {
        std::printf("  ... k=%llu  %s\n",
                    static_cast<unsigned long long>(p.samples),
                    p.ci.ToString().c_str());
        last_reported = p.samples;
      }
      return true;
    });
    auto result = remote.connected() ? remote.Execute(line, options)
                                     : session.Execute(line, options);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    last_profile = result->profile;
    PrintResult(*result);
  }
  return 0;
}
