// The paper's §1 running example: interactive exploration of NYC
// electricity usage. A user asks for the average usage in an area and
// period, watches the online estimate (e.g. "973 kWh ± 25 at 95%" after a
// moment), is satisfied, and immediately switches to a different area/time
// combination without waiting for the first query to finish.

#include <cstdio>

#include "storm/storm.h"

namespace {

void RunInteractiveQuery(storm::Session& session, const char* label,
                         const std::string& query, double stop_rel_error) {
  std::printf("\n[%s]\n  %s\n", label, query.c_str());
  storm::Stopwatch watch;
  auto result = session.Execute(
      query, storm::ExecOptions().WithProgress([&](const storm::QueryProgress& p) {
        if (p.samples > 0 && p.samples % 256 == 0) {
          std::printf("  after %6.1f ms: %s\n", p.elapsed_ms,
                      p.ci.ToString().c_str());
        }
        // The "user" walks away as soon as the estimate looks good enough.
        return !(p.samples >= 64 && p.ci.RelativeError() < stop_rel_error);
      }));
  if (!result.ok()) {
    std::fprintf(stderr, "  failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  -> %s after %.1f ms and %llu samples%s\n",
              result->ci.ToString().c_str(), watch.ElapsedMillis(),
              static_cast<unsigned long long>(result->samples),
              result->cancelled ? "  (user satisfied, moved on)" : "");
}

}  // namespace

int main() {
  using namespace storm;

  ElectricityOptions options;
  options.num_units = 2000;
  options.readings_per_unit = 90;
  ElectricityGenerator gen(options);
  std::vector<Value> docs;
  for (const ElectricityReading& r : gen.Generate()) {
    docs.push_back(ElectricityGenerator::ToDocument(r));
  }
  Session session;
  Status st = session.CreateTable("electricity", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu electricity readings over an NYC-like grid\n",
              docs.size());

  // First exploration: a midtown-ish window, Jan 5 - Mar 5.
  RunInteractiveQuery(
      session, "query 1: midtown, Jan 5 - Mar 5",
      "SELECT AVG(usage) FROM electricity REGION(-74.00, 40.70, -73.95, 40.78) "
      "TIME('2014-01-05', '2014-03-05') CONFIDENCE 95%",
      0.02);

  // The user changes the condition mid-exploration: different area and a
  // shifted time range (Jan 15 - Mar 12), exactly as in the paper.
  RunInteractiveQuery(
      session, "query 2: outer area, Jan 15 - Mar 12",
      "SELECT AVG(usage) FROM electricity REGION(-73.90, 40.60, -73.75, 40.72) "
      "TIME('2014-01-15', '2014-03-12') CONFIDENCE 98%",
      0.01);

  // A grouped view: per-unit averages for a small block, online.
  std::printf("\n[query 3: GROUP BY unit in a small block]\n");
  auto grouped = session.Execute(
      "SELECT AVG(usage) FROM electricity REGION(-74.00, 40.70, -73.98, 40.72) "
      "GROUP BY unit SAMPLES 3000");
  if (grouped.ok()) {
    std::printf("  %zu units discovered; first few:\n", grouped->groups.size());
    for (size_t i = 0; i < grouped->groups.size() && i < 5; ++i) {
      const auto& g = grouped->groups[i];
      std::printf("    unit %4lld: %s\n", static_cast<long long>(g.key),
                  g.ci.ToString().c_str());
    }
  }
  return 0;
}
