// Quickstart: register a data set with STORM, run an online aggregate, and
// watch the confidence interval tighten as spatial online samples arrive.
//
//   cmake --build build && ./build/examples/quickstart
//
// storm/client.h is the only header an application needs: it brings in
// storm::Client (table lifecycle + queries + updates) and storm::ExecOptions
// (every per-call knob). The generator and the terminal renderer below are
// optional extras for this demo.

#include <cstdio>

#include "storm/client.h"
#include "storm/data/osm_gen.h"
#include "storm/viz/render.h"

int main() {
  using namespace storm;

  // 1. Generate (or load) documents. Any JSON-shaped source works; here we
  //    use the bundled OSM-like generator.
  OsmOptions gen_options;
  gen_options.num_points = 100'000;
  OsmLikeGenerator gen(gen_options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }

  // 2. Register the documents as a table. The data connector discovers the
  //    schema and the (lon, lat) spatial binding automatically, and the
  //    ST-indexing module builds the RS-tree and LS-tree.
  Client db;
  Status st = db.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Run an online aggregate in the STORM query language. The progress
  //    callback fires once per sample batch — that is the online part: the
  //    estimate is usable from the first milliseconds.
  std::printf("online AVG(altitude) over a mountain-west window:\n");
  std::vector<ConfidenceInterval> history;
  auto result = db.Execute(
      "SELECT AVG(altitude) FROM osm REGION(-114, 35, -104, 45) "
      "ERROR 0.5% CONFIDENCE 95%",
      ExecOptions().WithProgress([&history](const QueryProgress& p) {
        if (p.samples % 256 == 0 && p.samples > 0) {
          history.push_back(p.ci);
        }
        if (p.samples % 512 == 0 && p.samples > 0) {
          std::printf("  k=%6llu  t=%7.2fms  estimate=%s\n",
                      static_cast<unsigned long long>(p.samples), p.elapsed_ms,
                      p.ci.ToString().c_str());
        }
        return true;  // keep going until the ERROR target is met
      }));
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!history.empty()) {
    std::printf("confidence interval narrowing around the estimate:\n%s",
                RenderConvergence(history, 56).c_str());
  }
  std::printf("final: %s\n", result->ci.ToString().c_str());
  std::printf("strategy: %s (%s)\n", result->strategy.c_str(),
              result->decision.reason.c_str());
  std::printf("samples: %llu in %.2f ms\n",
              static_cast<unsigned long long>(result->samples),
              result->elapsed_ms);

  // 4. The same aggregate with four parallel sampling workers — each draws
  //    from its own RNG stream into a private estimator shard, merged into
  //    one statistically valid interval.
  auto wide = db.Execute(
      "SELECT AVG(altitude) FROM osm REGION(-114, 35, -104, 45) "
      "ERROR 0.5% CONFIDENCE 95% USING RSTREE",
      ExecOptions().WithParallelism(4));
  if (wide.ok()) {
    std::printf("parallel(4): %s after %llu samples\n",
                wide->ci.ToString().c_str(),
                static_cast<unsigned long long>(wide->samples));
  }

  // 5. The exact answer, for comparison (QueryFirst reports everything).
  auto exact = db.Execute(
      "SELECT AVG(altitude) FROM osm REGION(-114, 35, -104, 45) "
      "USING QUERYFIRST SAMPLES 1000000000");
  if (exact.ok()) {
    std::printf("exact: %.4f (online estimate was %.4f)\n",
                exact->ci.estimate, result->ci.estimate);
  }
  return 0;
}
