// Ablation A5 — optimizer quality: across the selectivity spectrum, time
// every strategy for a fixed sample budget and check whether the
// optimizer's rule-based choice matches (or is close to) the empirical
// winner.

#include <string>

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  OsmOptions gen_options;
  gen_options.num_points = n;
  OsmLikeGenerator gen(gen_options);
  std::vector<OsmPoint> points = gen.Generate();
  std::vector<Value> docs;
  docs.reserve(points.size());
  for (const auto& p : points) docs.push_back(OsmLikeGenerator::ToDocument(p));
  Result<Table> table = Table::Create("osm", docs);
  if (!table.ok()) {
    std::printf("table build failed: %s\n", table.status().ToString().c_str());
    return;
  }
  QueryOptimizer optimizer;
  constexpr uint64_t kBudget = 1024;

  bench::PrintHeader(
      "Ablation A5 — optimizer choice vs empirical best (k=1024 samples)",
      "N=" + std::to_string(n) + "  times in ms; '-' = strategy failed");

  struct QueryCase {
    const char* label;
    Rect3 q;
  };
  const QueryCase cases[] = {
      {"whole data (sel~100%)",
       Rect3(Point3(-130, 20, -1), Point3(-60, 55, 1))},
      {"half (sel~50%)", Rect3(Point3(-112, 28, -1), Point3(-88, 46, 1))},
      {"regional (sel~5%)", Rect3(Point3(-105, 33, -1), Point3(-97, 40, 1))},
      {"city (sel~0.3%)", Rect3(Point3(-101, 35, -1), Point3(-99, 37, 1))},
      {"block (sel~0.01%)",
       Rect3(Point3(-100.2, 35.8, -1), Point3(-99.8, 36.2, 1))},
      {"empty", Rect3(Point3(10, 10, -1), Point3(20, 20, 1))},
  };
  const SamplerStrategy strategies[] = {
      SamplerStrategy::kQueryFirst, SamplerStrategy::kSampleFirst,
      SamplerStrategy::kRandomPath, SamplerStrategy::kLsTree,
      SamplerStrategy::kRsTree};

  std::printf("%-24s | %10s %10s %10s %10s %10s | %-12s %-12s\n", "query",
              "QueryFirst", "SampleFst", "RandPath", "LS-tree", "RS-tree",
              "chosen", "best");
  for (const QueryCase& qc : cases) {
    double best_ms = -1;
    std::string best_name = "-";
    double times[5];
    for (int s = 0; s < 5; ++s) {
      auto sampler = table->NewSampler(strategies[s], 42);
      if (!sampler.ok()) {
        times[s] = -1;
        continue;
      }
      uint64_t q_count = table->base_tree().RangeCount(qc.q);
      uint64_t k = std::min(kBudget, q_count);
      SamplingMode mode = strategies[s] == SamplerStrategy::kLsTree
                              ? SamplingMode::kWithoutReplacement
                              : SamplingMode::kWithReplacement;
      if (k == 0) {
        // Time proving emptiness: Begin + one failed Next. SampleFirst
        // burns its full attempt budget here — that is the point.
        Stopwatch watch;
        Status st = (*sampler)->Begin(qc.q, mode);
        (void)(*sampler)->Next();
        times[s] = st.ok() ? watch.ElapsedMillis() : -1;
      } else {
        times[s] = bench::TimeKSamples(**sampler, qc.q, k, mode);
      }
      if (times[s] >= 0 && (best_ms < 0 || times[s] < best_ms)) {
        best_ms = times[s];
        best_name = SamplerStrategyToString(strategies[s]);
      }
    }
    OptimizerDecision decision = optimizer.Choose(*table, qc.q, kBudget);
    std::printf("%-24s |", qc.label);
    for (double t : times) {
      if (t < 0) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.3f", t);
      }
    }
    std::printf(" | %-12s %-12s\n",
                std::string(SamplerStrategyToString(decision.strategy)).c_str(),
                best_name.c_str());
  }
  std::printf(
      "\nExpected: the chosen strategy is the empirical winner (or within\n"
      "small-constant range of it) across the spectrum; SampleFirst only\n"
      "wins at very high selectivity, QueryFirst at tiny q or empty.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
