// Ablation A6 — distributed execution: sampling throughput of the merged
// coordinator stream as the shard count grows, plus the locality advantage
// of Hilbert-range partitioning (how many shards a localized query
// touches). Also validates the merge: the coordinator's exact cardinality
// must equal a single-index count.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  auto entries = OsmLikeGenerator::ToEntries(gen.Generate(), nullptr);
  Rect3 wide(Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0));
  Rect3 local(Point3(-101.0, 35.0, -1.0), Point3(-99.0, 37.0, 1.0));
  RsTree<3> single(entries, {}, 42);
  uint64_t truth = single.tree().RangeCount(wide);
  constexpr uint64_t kSamples = 50'000;

  bench::PrintHeader("Ablation A6 — cluster scaling and partition locality",
                     "N=" + std::to_string(n) + "  wide-query q=" +
                         std::to_string(truth) + "  k=" +
                         std::to_string(kSamples));

  std::printf("%8s %14s | %16s %14s | %16s %14s\n", "shards", "partitioning",
              "samples/sec", "count ok", "shards touched", "(local query)");
  for (int shards : {1, 2, 4, 8}) {
    for (Partitioning p : {Partitioning::kHash, Partitioning::kHilbertRange}) {
      Cluster cluster(entries, shards, p, {}, 42);
      auto sampler = cluster.NewSampler(Rng(43));
      Status st = sampler->Begin(wide, SamplingMode::kWithReplacement);
      if (!st.ok()) continue;
      Stopwatch watch;
      uint64_t drawn = 0;
      for (; drawn < kSamples; ++drawn) {
        if (!sampler->Next().has_value()) break;
      }
      double secs = watch.ElapsedSeconds();
      Result<uint64_t> count = cluster.Count(wide);
      bool count_ok = count.ok() && *count == truth &&
                      sampler->Cardinality().lower == truth;
      std::printf("%8d %14s | %16.0f %14s | %16d %14s\n", shards,
                  p == Partitioning::kHash ? "hash" : "hilbert",
                  static_cast<double>(drawn) / secs, count_ok ? "yes" : "NO",
                  cluster.ShardsTouched(local), "");
    }
  }
  std::printf(
      "\nExpected: merged throughput stays flat in-process (the merge adds\n"
      "one weighted choice per draw); distributed counts always match; the\n"
      "Hilbert-range layout touches far fewer shards on localized queries\n"
      "(the reason §3.1 uses a distributed Hilbert R-tree).\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
