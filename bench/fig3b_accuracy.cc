// Figure 3(b): online accuracy — relative error of the running
// avg(altitude) estimate as a function of elapsed query time, for RS-tree
// and LS-tree.
//
// The paper reports relative error dropping from ~30% toward ~0 within
// ~140 ms on the full OSM data set. At laptop scale the same 1/√t decay
// happens faster, so the checkpoint grid is denser; the shape — monotone
// decay, both trees comparable, RS-tree slightly ahead at the start — is
// the reproduction target.

#include <cmath>

#include "bench_util.h"

namespace storm {
namespace {

struct Series {
  std::vector<double> at_checkpoint;  // relative error per checkpoint
};

Series MeasureErrorOverTime(SpatialSampler<3>& sampler, const Rect3& q,
                            SamplingMode mode, const std::vector<double>& alt,
                            double truth,
                            const std::vector<double>& checkpoints_ms) {
  Series series;
  Status st = sampler.Begin(q, mode);
  if (!st.ok()) {
    series.at_checkpoint.assign(checkpoints_ms.size(), -1.0);
    return series;
  }
  RunningStat stat;
  Stopwatch watch;
  size_t next = 0;
  while (next < checkpoints_ms.size()) {
    for (int i = 0; i < 16; ++i) {
      auto e = sampler.Next();
      if (!e.has_value()) break;
      stat.Push(alt[e->id]);
    }
    double elapsed = watch.ElapsedMillis();
    while (next < checkpoints_ms.size() && elapsed >= checkpoints_ms[next]) {
      double err = stat.count() > 0
                       ? std::fabs(stat.mean() - truth) / std::fabs(truth)
                       : 1.0;
      series.at_checkpoint.push_back(err);
      ++next;
    }
  }
  return series;
}

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 500'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<OsmPoint> points = gen.Generate();
  std::vector<double> altitude;
  auto entries = OsmLikeGenerator::ToEntries(points, &altitude);
  Rect3 q(Point3(-118.0, 30.0, -1.0), Point3(-95.0, 45.0, 1.0));

  RsTree<3> rs(entries, {}, 42);
  LsTree<3> ls(entries, {}, 43);

  double truth = 0;
  uint64_t q_count = 0;
  for (const auto& e : entries) {
    if (q.Contains(e.point)) {
      truth += altitude[e.id];
      ++q_count;
    }
  }
  truth /= static_cast<double>(q_count);

  bench::PrintHeader(
      "Fig 3(b) — accuracy: relative error of avg(altitude) vs time",
      "N=" + std::to_string(n) + "  q=" + std::to_string(q_count) +
          "  true avg=" + std::to_string(truth) +
          "  (averaged over 9 runs; paper window was 40-140 ms at q=1e9)");

  std::vector<double> checkpoints = {0.05, 0.1, 0.2, 0.4, 0.8,
                                     1.6,  3.2, 6.4, 12.8, 25.6};
  constexpr int kRuns = 9;
  std::vector<double> rs_err(checkpoints.size(), 0.0);
  std::vector<double> ls_err(checkpoints.size(), 0.0);
  for (int run = 0; run < kRuns; ++run) {
    auto rs_sampler = rs.NewSampler(Rng(100 + static_cast<uint64_t>(run)));
    Series s1 = MeasureErrorOverTime(*rs_sampler, q,
                                     SamplingMode::kWithReplacement, altitude,
                                     truth, checkpoints);
    auto ls_sampler = ls.NewSampler(Rng(200 + static_cast<uint64_t>(run)));
    Series s2 = MeasureErrorOverTime(*ls_sampler, q,
                                     SamplingMode::kWithoutReplacement,
                                     altitude, truth, checkpoints);
    for (size_t i = 0; i < checkpoints.size(); ++i) {
      rs_err[i] += s1.at_checkpoint[i] / kRuns;
      ls_err[i] += s2.at_checkpoint[i] / kRuns;
    }
  }
  std::printf("%10s | %12s %12s\n", "time (ms)", "RS-tree", "LS-tree");
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    std::printf("%10.2f | %11.3f%% %11.3f%%\n", checkpoints[i],
                rs_err[i] * 100, ls_err[i] * 100);
  }
  std::printf(
      "\nShape check vs paper: error decays ~1/sqrt(t) for both; the two\n"
      "index structures track each other closely.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
