// Shared helpers for the STORM benchmark harnesses.
//
// Every figure bench prints a self-describing table to stdout so the series
// can be compared against the corresponding figure of the paper. Data sizes
// default to laptop scale and are overridable through environment
// variables:
//   STORM_BENCH_N       number of points for the Fig 3 experiments
//   STORM_BENCH_TWEETS  number of tweets for the Fig 5/6 experiments

#ifndef STORM_BENCH_BENCH_UTIL_H_
#define STORM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include "storm/storm.h"

namespace storm::bench {

inline uint64_t EnvSize(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0' && parsed > 0) ? parsed : fallback;
}

inline void PrintHeader(const char* figure, const std::string& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("%s\n", config.c_str());
  std::printf("==============================================================\n");
}

/// Times Begin() plus k draws (the user-visible latency of "give me k
/// online samples"); returns elapsed ms, or -1 if the sampler cannot
/// produce them.
template <int D>
double TimeKSamples(SpatialSampler<D>& sampler, const Rect<D>& q, uint64_t k,
                    SamplingMode mode) {
  Stopwatch watch;
  Status st = sampler.Begin(q, mode);
  if (!st.ok()) return -1.0;
  typename SpatialSampler<D>::Entry buf[256];
  for (uint64_t drawn = 0; drawn < k;) {
    const uint64_t want = std::min<uint64_t>(k - drawn, 256);
    const uint64_t got = sampler.NextBatch(
        std::span<typename SpatialSampler<D>::Entry>(buf, want));
    if (got == 0) return -1.0;
    drawn += got;
  }
  return watch.ElapsedMillis();
}

}  // namespace storm::bench

#endif  // STORM_BENCH_BENCH_UTIL_H_
