// Ablation A3 — simulated I/O cost per sample: the paper's key systems
// argument (§3.1) is that RandomPath costs Ω(1) random page reads per
// sample on disk-resident trees, while LS-tree range scans cost O(k/B) and
// RS-tree buffered pops mostly hit the hot node page. This bench routes all
// index node accesses through a small LRU buffer pool over the simulated
// disk and reports page faults per sample.

#include "bench_util.h"

namespace storm {
namespace {

struct IoRow {
  const char* method;
  double faults_per_sample;
  double logical_per_sample;
};

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  auto entries = OsmLikeGenerator::ToEntries(gen.Generate(), nullptr);
  Rect3 q(Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0));
  constexpr uint64_t kSamples = 20'000;

  bench::PrintHeader(
      "Ablation A3 — simulated page faults per online sample",
      "N=" + std::to_string(n) + "  k=" + std::to_string(kSamples) +
          "  pool=64 pages (every node access goes through the pool)");

  std::vector<IoRow> rows;

  auto measure = [&](const char* name, auto&& make_index_and_sampler) {
    BlockManager disk(4096);
    BufferPool pool(&disk, 64);
    auto [index_holder, sampler, mode] = make_index_and_sampler(&pool);
    (void)index_holder;
    Status st = sampler->Begin(q, mode);
    if (!st.ok()) {
      std::printf("%s: begin failed: %s\n", name, st.ToString().c_str());
      return;
    }
    // Warm up the pool with a few draws, then measure steady state.
    for (int i = 0; i < 512; ++i) (void)sampler->Next();
    IoStats before = disk.stats();
    for (uint64_t i = 0; i < kSamples; ++i) {
      if (!sampler->Next().has_value()) break;
    }
    IoStats delta = disk.stats() - before;
    rows.push_back(
        {name, static_cast<double>(delta.pool_misses) / kSamples,
         static_cast<double>(delta.logical_reads) / kSamples});
  };

  struct RandomPathHolder {
    std::unique_ptr<RsTree<3>> rs;
  };

  // Fanout 16 gives realistic tree heights at laptop N so the per-level
  // page-access patterns are visible.
  constexpr int kFanout = 16;

  measure("RandomPath", [&](BufferPool* pool) {
    RsTreeOptions o;
    o.rtree.pool = pool;
    o.rtree.max_entries = kFanout;
    auto rs = std::make_unique<RsTree<3>>(entries, o, 42);
    auto sampler =
        std::make_unique<RandomPathSampler<3>>(&rs->tree(), Rng(43));
    return std::tuple<std::shared_ptr<void>, std::unique_ptr<SpatialSampler<3>>,
                      SamplingMode>(std::move(rs), std::move(sampler),
                                    SamplingMode::kWithReplacement);
  });

  measure("RS-tree", [&](BufferPool* pool) {
    RsTreeOptions o;
    o.rtree.pool = pool;
    o.rtree.max_entries = kFanout;
    o.buffer_size = 256;  // several block-loads of pre-drawn samples
    auto rs = std::make_unique<RsTree<3>>(entries, o, 42);
    auto sampler = rs->NewSampler(Rng(43));
    return std::tuple<std::shared_ptr<void>, std::unique_ptr<SpatialSampler<3>>,
                      SamplingMode>(std::move(rs), std::move(sampler),
                                    SamplingMode::kWithReplacement);
  });

  measure("LS-tree", [&](BufferPool* pool) {
    LsTreeOptions o;
    o.rtree.pool = pool;
    o.rtree.max_entries = kFanout;
    auto ls = std::make_unique<LsTree<3>>(entries, o, 42);
    auto sampler = ls->NewSampler(Rng(43));
    return std::tuple<std::shared_ptr<void>, std::unique_ptr<SpatialSampler<3>>,
                      SamplingMode>(std::move(ls), std::move(sampler),
                                    SamplingMode::kWithoutReplacement);
  });

  std::printf("%12s %22s %22s\n", "method", "page faults / sample",
              "node visits / sample");
  for (const IoRow& row : rows) {
    std::printf("%12s %22.4f %22.4f\n", row.method, row.faults_per_sample,
                row.logical_per_sample);
  }
  std::printf(
      "\nShape check vs paper: RandomPath faults on ~every sample (random\n"
      "root-to-leaf walks thrash the pool); RS-tree amortizes via node\n"
      "buffers; LS-tree's sequential level scans fault ~1/B of the time.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
