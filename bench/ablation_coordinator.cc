// Ablation: networked fan-out on the Fig 3(a) workload.
//
// The same 200k-point OSM-like data set and mountain-west window as
// fig3a_query_efficiency, queried three ways with identical ExecOptions:
//
//   in-process    — Client::Execute against one Session holding all N
//                   points (no sockets, no fan-out);
//   coordinator   — NetCoordinator over three real storm_server child
//                   processes, each holding a disjoint third of the same
//                   table (--shard-index k --num-shards 3 regenerates the
//                   identical data set and keeps rows i where i%3==k), so
//                   the stratified merge reconstructs the one-process
//                   answer;
//   +slow shard   — the same fleet with shard 2 started with
//                   --failpoint server.conn.slow:latency_ms=K,code=ok,
//                   delaying every frame its writer sends. Failpoint
//                   registries are per-process, so a child process is the
//                   only way to make exactly one shard of the fleet slow.
//
// A fourth scenario exercises replica groups: a 2-partition x 2-replica
// fleet whose serving replica is SIGKILLed mid-stream, reporting the time
// from the kill until the merged CI recovers its pre-kill tightness
// (time-to-recovered-CI), the final coverage (1.0 = the failover kept the
// answer exact), and the estimate's delta vs the in-process answer.
//
// Reported per mode: mean per-query latency, mean time to the first
// (merged) PROGRESS frame, progress frames seen, and errors. The two
// numbers that matter for the fleet-serving acceptance bar:
//   - coordinator vs in-process mean latency = the cost of networked
//     fan-out + stratified merge on this workload;
//   - +slow-shard first-progress vs healthy first-progress = straggler
//     tolerance. The merged anytime stream must keep the coordinator's
//     cadence (survivor shards keep reporting), not degrade to the
//     straggler's: first progress should stay within a few merge
//     intervals even when one shard crawls.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storm/cluster/net_coordinator.h"

namespace storm {
namespace {

struct ModeStats {
  double total_ms = 0.0;
  double first_progress_ms = 0.0;
  uint64_t queries = 0;
  uint64_t progress_frames = 0;
  uint64_t errors = 0;
};

struct ChildShard {
  pid_t pid = -1;
  int port = -1;
  std::string stdout_path;
};

std::string ReadFileOrEmpty(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

int AwaitServingPort(const std::string& path, int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 100) {
    std::string out = ReadFileOrEmpty(path);
    size_t pos = out.find("serving on port ");
    if (pos != std::string::npos) {
      return std::atoi(out.c_str() + pos + std::strlen("serving on port "));
    }
    usleep(100 * 1000);
  }
  return -1;
}

// fork/exec one full-size storm_server shard (the demo `osm` table at the
// default 200k points IS the Fig 3(a) data set). The optional failpoint
// spec arms a process-local fault in that shard only. `tag` names the
// stdout capture; replica fleets must pass distinct tags, since two
// replicas share a shard index.
ChildShard SpawnShard(int index, int num_shards, const char* failpoint,
                      const char* tag = nullptr) {
  ChildShard shard;
  const std::string name = tag != nullptr ? tag : std::to_string(index);
  shard.stdout_path = "/tmp/storm_bench_shard" + name + "." +
                      std::to_string(static_cast<long>(getpid()));
  std::remove(shard.stdout_path.c_str());

  shard.pid = fork();
  if (shard.pid == 0) {
    int out =
        open(shard.stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out < 0) _exit(41);
    dup2(out, STDOUT_FILENO);
    dup2(out, STDERR_FILENO);
    std::string idx = std::to_string(index);
    std::string n = std::to_string(num_shards);
    if (failpoint != nullptr) {
      execl(STORM_SERVER_BIN, STORM_SERVER_BIN, "--port", "0", "--shard-index",
            idx.c_str(), "--num-shards", n.c_str(), "--failpoint", failpoint,
            static_cast<char*>(nullptr));
    } else {
      execl(STORM_SERVER_BIN, STORM_SERVER_BIN, "--port", "0", "--shard-index",
            idx.c_str(), "--num-shards", n.c_str(),
            static_cast<char*>(nullptr));
    }
    _exit(42);
  }
  return shard;
}

void ReapShard(ChildShard* shard, int sig = SIGTERM) {
  if (shard->pid <= 0) return;
  kill(shard->pid, sig);
  int status = 0;
  waitpid(shard->pid, &status, 0);
  shard->pid = -1;
  std::remove(shard->stdout_path.c_str());
}

bool AwaitLiveShards(const NetCoordinator& c, int want, int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 50) {
    if (c.live_shards() >= want) return true;
    usleep(50 * 1000);
  }
  return false;
}

// Runs `queries` identical queries through `execute`, timing total latency
// and time-to-first-progress per query.
template <typename ExecuteFn>
ModeStats RunMode(const ExecuteFn& execute, const std::string& query,
                  int queries) {
  ModeStats s;
  (void)execute(query, ExecOptions());  // warm planner/sampler/connections
  for (int i = 0; i < queries; ++i) {
    Stopwatch watch;
    double first_ms = -1.0;
    ExecOptions options;
    options.progress = [&](const QueryProgress&) {
      if (first_ms < 0.0) first_ms = watch.ElapsedMillis();
      ++s.progress_frames;
      return true;
    };
    auto result = execute(query, options);
    if (!result.ok()) {
      ++s.errors;
      continue;
    }
    s.total_ms += watch.ElapsedMillis();
    if (first_ms >= 0.0) s.first_progress_ms += first_ms;
    ++s.queries;
  }
  return s;
}

void PrintRow(const char* mode, const ModeStats& s) {
  const double mean =
      s.queries > 0 ? s.total_ms / static_cast<double>(s.queries) : 0.0;
  const double first =
      s.queries > 0 ? s.first_progress_ms / static_cast<double>(s.queries)
                    : 0.0;
  std::printf("%16s | %8llu %12.2f %14.2f %10llu %8llu\n", mode,
              static_cast<unsigned long long>(s.queries), mean, first,
              static_cast<unsigned long long>(s.progress_frames),
              static_cast<unsigned long long>(s.errors));
}

void Run() {
  using bench::EnvSize;
  // N is pinned: the child shards regenerate storm_server's full-size demo
  // `osm` table (200k points), which is the Fig 3(a) data set.
  const uint64_t n = 200'000;
  const int queries = static_cast<int>(EnvSize("STORM_BENCH_QUERIES", 5));
  const uint64_t cap = EnvSize("STORM_BENCH_SAMPLES", 200'000);
  const uint64_t slow_ms = EnvSize("STORM_BENCH_SLOW_MS", 25);

  const std::string query =
      "SELECT AVG(altitude) FROM osm REGION(-112, 28, -88, 46) SAMPLES " +
      std::to_string(cap) + " ERROR 0.0001% USING RSTREE";

  bench::PrintHeader(
      "Ablation — networked coordinator: fan-out + straggler tolerance",
      "N=" + std::to_string(n) + "  cap=" + std::to_string(cap) +
          "  3 shards, " + std::to_string(queries) +
          " queries/mode, slow shard +" + std::to_string(slow_ms) +
          " ms/frame, Fig 3(a) window");

  // --- In-process: one Session holding all N points. ---
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }
  Client client;
  Status st = client.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return;
  }
  ModeStats local = RunMode(
      [&](const std::string& q, const ExecOptions& o) {
        return client.Execute(q, o);
      },
      query, queries);

  // --- Fleets: failpoints are armed at exec time, so the healthy pass and
  // the slow-shard pass each get their own three-process fleet. Spawn all
  // six children up front so their (identical, deterministic) demo loads
  // overlap instead of serializing.
  const std::string slow_spec = "server.conn.slow:latency_ms=" +
                                std::to_string(slow_ms) + ",code=ok";
  std::vector<ChildShard> healthy_fleet, slow_fleet;
  for (int i = 0; i < 3; ++i) healthy_fleet.push_back(SpawnShard(i, 3, nullptr));
  for (int i = 0; i < 3; ++i) {
    slow_fleet.push_back(
        SpawnShard(i, 3, i == 2 ? slow_spec.c_str() : nullptr));
  }
  auto reap_all = [&] {
    for (ChildShard& s : healthy_fleet) ReapShard(&s);
    for (ChildShard& s : slow_fleet) ReapShard(&s);
  };
  for (std::vector<ChildShard>* fleet : {&healthy_fleet, &slow_fleet}) {
    for (ChildShard& s : *fleet) {
      s.port = AwaitServingPort(s.stdout_path, 120'000);
      if (s.port <= 0) {
        std::fprintf(stderr, "shard did not come up: %s\n",
                     ReadFileOrEmpty(s.stdout_path).c_str());
        reap_all();
        return;
      }
    }
  }

  auto run_fleet = [&](const std::vector<ChildShard>& fleet) {
    std::vector<ShardEndpoint> endpoints;
    for (const ChildShard& s : fleet) endpoints.push_back({"127.0.0.1", s.port});
    NetCoordinator coordinator(endpoints, NetCoordinatorOptions{});
    ModeStats s;
    if (!coordinator.Start().ok() || !AwaitLiveShards(coordinator, 3, 10'000)) {
      s.errors = static_cast<uint64_t>(queries);
      coordinator.Stop();
      return s;
    }
    s = RunMode(
        [&](const std::string& q, const ExecOptions& o) {
          return coordinator.Execute(q, o);
        },
        query, queries);
    coordinator.Stop();
    return s;
  };
  ModeStats fleet_ok = run_fleet(healthy_fleet);
  ModeStats fleet_slow = run_fleet(slow_fleet);
  reap_all();

  // --- Failover: replica groups turn a mid-stream SIGKILL into a blip. ---
  // 2 partitions x 2 replicas; the serving replica of partition 0 (slot 0,
  // pinned by deterministic_retry_jitter) is slowed so it is provably
  // mid-stream, then SIGKILLed at the first merged progress. The
  // coordinator drops its partials and re-issues the partition's stream
  // on the sibling. Reported: time from the kill until the merged CI is
  // back to at least the tightness it had when the kill landed
  // (time-to-recovered-CI), final coverage, and the estimate's delta vs
  // the in-process answer.
  std::vector<ChildShard> replica_fleet;
  replica_fleet.push_back(SpawnShard(0, 2, slow_spec.c_str(), "f0a"));
  replica_fleet.push_back(SpawnShard(0, 2, nullptr, "f0b"));
  replica_fleet.push_back(SpawnShard(1, 2, nullptr, "f1a"));
  replica_fleet.push_back(SpawnShard(1, 2, nullptr, "f1b"));
  bool replica_up = true;
  for (ChildShard& s : replica_fleet) {
    s.port = AwaitServingPort(s.stdout_path, 120'000);
    if (s.port <= 0) {
      std::fprintf(stderr, "replica shard did not come up: %s\n",
                   ReadFileOrEmpty(s.stdout_path).c_str());
      replica_up = false;
    }
  }

  double truth = 0.0;
  {
    auto truth_result = client.Execute(query, ExecOptions());
    if (truth_result.ok()) truth = truth_result->ci.estimate;
  }

  double kill_ms = -1.0, recovered_ms = -1.0, total_ms = 0.0;
  double coverage = 0.0, estimate = 0.0;
  bool failover_ok = false;
  std::string strategy;
  if (replica_up) {
    std::vector<ShardEndpoint> endpoints;
    for (const ChildShard& s : replica_fleet) {
      endpoints.push_back({"127.0.0.1", s.port});
    }
    NetCoordinatorOptions replica_options;
    replica_options.replicas = 2;
    replica_options.deterministic_retry_jitter = true;
    NetCoordinator coordinator(endpoints, replica_options);
    if (coordinator.Start().ok() && AwaitLiveShards(coordinator, 4, 20'000)) {
      Stopwatch watch;
      double kill_hw = 0.0;
      ExecOptions options;
      options.progress = [&](const QueryProgress& p) {
        if (p.samples == 0) return true;
        if (kill_ms < 0.0) {
          kill_ms = watch.ElapsedMillis();
          kill_hw = p.ci.half_width;
          kill(replica_fleet[0].pid, SIGKILL);
        } else if (recovered_ms < 0.0 && p.ci.half_width <= kill_hw) {
          recovered_ms = watch.ElapsedMillis();
        }
        return true;
      };
      auto result = coordinator.Execute(query, options);
      total_ms = watch.ElapsedMillis();
      if (result.ok()) {
        failover_ok = !result->degraded;
        coverage = result->coverage;
        estimate = result->ci.estimate;
        strategy = result->strategy;
      }
    }
    coordinator.Stop();
  }
  for (ChildShard& s : replica_fleet) ReapShard(&s, SIGKILL);

  std::printf("%16s | %8s %12s %14s %10s %8s\n", "mode", "queries", "mean ms",
              "first prog ms", "progress", "errors");
  PrintRow("in-process", local);
  PrintRow("coordinator", fleet_ok);
  PrintRow("+slow shard", fleet_slow);

  if (local.queries > 0 && fleet_ok.queries > 0) {
    const double local_mean = local.total_ms / static_cast<double>(local.queries);
    const double fleet_mean =
        fleet_ok.total_ms / static_cast<double>(fleet_ok.queries);
    std::printf("\nnetworked fan-out overhead: %+.1f%% per query\n",
                (fleet_mean - local_mean) / local_mean * 100.0);
  }
  if (fleet_ok.queries > 0 && fleet_slow.queries > 0) {
    const double ok_first =
        fleet_ok.first_progress_ms / static_cast<double>(fleet_ok.queries);
    const double slow_first =
        fleet_slow.first_progress_ms / static_cast<double>(fleet_slow.queries);
    std::printf("straggler first-progress penalty: %.2f ms -> %.2f ms "
                "(merged stream keeps the survivors' cadence)\n",
                ok_first, slow_first);
  }
  if (kill_ms >= 0.0) {
    // recovered_ms can stay unset when the stream tightens past the
    // kill-time CI only at the final RESULT; the query's total time then
    // bounds the recovery.
    const double recovery =
        (recovered_ms >= 0.0 ? recovered_ms : total_ms) - kill_ms;
    std::printf(
        "failover (2x2 replicas, serving replica SIGKILLed at %.2f ms):\n"
        "  time-to-recovered-CI: %.2f ms   coverage: %.2f%s\n"
        "  estimate delta vs in-process: %+.4g  [%s]\n",
        kill_ms, recovery, coverage,
        failover_ok ? " (exact, not degraded)" : " (DEGRADED)",
        estimate - truth, strategy.c_str());
  } else if (replica_up) {
    std::printf("failover scenario: query finished before any progress "
                "frame; no kill injected\n");
  }
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
