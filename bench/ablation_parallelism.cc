// Ablation: parallel online-sampling throughput on the Fig 3(a) workload.
//
// The same OSM-like data set and mountain-west window as
// fig3a_query_efficiency, run through the full query engine
// (Session::Execute, AVG USING RSTREE) at ExecOptions parallelism 1, 2, 4
// and 8. Each worker owns a forked RNG stream and a private estimator
// shard with lock-free RS-tree draw buffers; the coordinator merges the
// shards into one confidence interval.
//
// Reported: end-to-end samples/sec per worker count and the speedup over
// the sequential loop (parallelism = 1). On a multi-core host the worker
// counts scale near-linearly until the memory bus saturates; on a 1-core
// CI box the curve flattens after the first worker, but the parallel
// engine still clears the 3x acceptance bar because its draw path skips
// the sequential loop's per-batch CI recomputation and progress plumbing.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 500'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }

  Session session;
  Status st = session.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return;
  }

  // The Fig 3(a) window (covers roughly half the data), an effectively
  // unreachable ERROR target, and a sample cap large enough to dominate
  // per-query setup cost.
  const uint64_t cap = EnvSize("STORM_BENCH_SAMPLES", 1'000'000);
  const std::string query =
      "SELECT AVG(altitude) FROM osm REGION(-112, 28, -88, 46) SAMPLES " +
      std::to_string(cap) + " ERROR 0.0001% USING RSTREE";

  bench::PrintHeader(
      "Ablation — parallel sampling engine: samples/sec vs worker count",
      "N=" + std::to_string(n) + "  cap=" + std::to_string(cap) +
          "  AVG USING RSTREE over the Fig 3(a) window");

  std::printf("%8s | %12s %10s %14s %9s\n", "workers", "samples", "ms",
              "samples/sec", "speedup");

  double base_rate = 0.0;
  double rate8 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    // Warm the buffer pool / branch predictors once per configuration.
    (void)session.Execute(query, ExecOptions()
                                     .WithParallelism(workers)
                                     .WithDeadlineMs(50)
                                     .WithProfile(false));
    auto result = session.Execute(
        query, ExecOptions().WithParallelism(workers).WithProfile(false));
    if (!result.ok()) {
      std::fprintf(stderr, "workers=%d: %s\n", workers,
                   result.status().ToString().c_str());
      return;
    }
    double rate = result->samples / (result->elapsed_ms / 1000.0);
    if (workers == 1) base_rate = rate;
    if (workers == 8) rate8 = rate;
    std::printf("%8d | %12llu %10.1f %14.0f %8.2fx\n", workers,
                static_cast<unsigned long long>(result->samples),
                result->elapsed_ms, rate,
                base_rate > 0.0 ? rate / base_rate : 0.0);
  }

  bool pass = base_rate > 0.0 && rate8 >= 3.0 * base_rate;
  std::printf(
      "\nAcceptance: 8-worker throughput >= 3x sequential ... %s "
      "(%.2fx)\n\n",
      pass ? "PASS" : "FAIL", base_rate > 0.0 ? rate8 / base_rate : 0.0);
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
