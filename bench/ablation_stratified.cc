// Ablation — stratified vs uniform sampling: samples needed to reach a
// target CI half-width on a spatially skewed workload.
//
// The fixture is the adversary uniform sampling is worst at: the attribute's
// level and spread depend on where the point lives (a quiet western half
// near 10, a loud eastern half near 1000 +- 100), so the population variance
// is dominated by between-region variance. The stratified engine partitions
// the query's canonical RS-tree node set into spatially coherent strata
// (Hilbert/DFS packing), estimates per-stratum moments, and spends its
// budget by Neyman allocation — between-region variance costs it nothing.
//
// Reported: samples drawn until the 95% CI half-width first reaches each
// target, for the uniform RS-tree stream and the stratified engine, and the
// sample-efficiency ratio. Acceptance (PASS/FAIL line, checked by CI): the
// stratified engine reaches the tightest target with at least 1.5x fewer
// samples than uniform.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storm/estimator/stratified.h"
#include "storm/sampling/stratified.h"

namespace storm {
namespace {

struct Skewed {
  std::vector<RTree<2>::Entry> entries;
  std::vector<double> values;
};

Skewed MakeSkewed(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  Skewed d;
  d.entries.reserve(n);
  d.values.reserve(n);
  for (RecordId i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, 100);
    double y = rng.UniformDouble(0, 100);
    d.entries.push_back({Point2(x, y), i});
    d.values.push_back(x < 50 ? rng.Normal(10, 1) : rng.Normal(1000, 100));
  }
  return d;
}

/// Steps `agg` until its CI half-width reaches `target` (or the cap);
/// returns samples drawn.
template <typename Agg>
uint64_t SamplesToTarget(Agg& agg, double target, uint64_t cap) {
  while (agg.samples_drawn() < cap) {
    if (agg.Step(256) == 0) break;
    ConfidenceInterval ci = agg.Current();
    if (std::isfinite(ci.half_width) && ci.half_width <= target) break;
  }
  return agg.samples_drawn();
}

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  const uint64_t cap = EnvSize("STORM_BENCH_SAMPLES", 2'000'000);
  const uint64_t seed = EnvSize("STORM_BENCH_SEED", 42);

  Skewed data = MakeSkewed(n, seed);
  RsTree<2> rs(data.entries, RsTreeOptions(), seed + 1);
  const std::vector<double>* column = &data.values;
  AttributeFn<2> attr = [column](const RTree<2>::Entry& e) {
    return e.id < column->size() ? (*column)[e.id]
                                 : std::numeric_limits<double>::quiet_NaN();
  };
  const Rect2 query(Point2(-1, -1), Point2(101, 101));

  bench::PrintHeader(
      "Ablation — stratified vs uniform: samples to target CI half-width",
      "N=" + std::to_string(n) + "  AVG(v), 95% CI, with replacement; "
      "skewed two-region attribute");

  const double targets[] = {80.0, 40.0, 20.0, 10.0};
  std::printf("%-12s | %12s %12s | %8s\n", "target hw", "uniform", "stratified",
              "ratio");
  double tightest_ratio = 0.0;
  for (double target : targets) {
    auto us = rs.NewSampler(Rng(seed + 2), /*shared_buffers=*/false);
    OnlineAggregator<2> uniform(us.get(), attr, AggregateKind::kAvg);
    if (!uniform.Begin(query, SamplingMode::kWithReplacement).ok()) return;
    uint64_t u = SamplesToTarget(uniform, target, cap);

    StratifiedSampler<2> ss(&rs, SamplingOptions(), Rng(seed + 3));
    StratifiedAggregator<2> strat(&ss, attr, AggregateKind::kAvg);
    if (!strat.Begin(query, SamplingMode::kWithReplacement).ok()) return;
    uint64_t s = SamplesToTarget(strat, target, cap);

    double ratio = s > 0 ? static_cast<double>(u) / static_cast<double>(s) : 0;
    tightest_ratio = ratio;  // targets tighten monotonically
    std::printf("%-12.1f | %12llu %12llu | %7.1fx\n", target,
                static_cast<unsigned long long>(u),
                static_cast<unsigned long long>(s), ratio);
  }

  const bool pass = tightest_ratio >= 1.5;
  std::printf("\n%s: stratified reaches hw=%.1f with %.1fx fewer samples "
              "(acceptance: >= 1.5x)\n",
              pass ? "PASS" : "FAIL", targets[3], tightest_ratio);
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
