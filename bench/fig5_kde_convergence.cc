// Figure 5: interactive online KDE — the demo shows density maps over
// tweets whose quality visibly improves with query time, at a city zoom
// ("SLC") and a national zoom ("USA").
//
// Reproduction: synthetic tweets, two nested query windows, and two
// quantitative quality curves per window as samples accumulate — the mean
// CI half-width of the density map (the knob the demo visualizes) and the
// relative L1 distance to the exact density map.

#include <cmath>

#include "bench_util.h"

namespace storm {
namespace {

void RunWindow(const char* label, const RsTree<3>& rs,
               const std::vector<RTree<3>::Entry>& entries, const Rect3& q,
               const Rect2& region) {
  KdeOptions options;
  options.grid_width = 48;
  options.grid_height = 48;
  std::vector<double> exact =
      OnlineKde<3>::ExactDensity(entries, q, region, options);
  double exact_mass = 0;
  for (double d : exact) exact_mass += d;

  auto sampler = rs.NewSampler(Rng(31));
  OnlineKde<3> kde(sampler.get(), region, options);
  Status st = kde.Begin(q);
  if (!st.ok()) {
    std::printf("window %s failed: %s\n", label, st.ToString().c_str());
    return;
  }
  std::printf("--- window: %s (q=%llu)\n", label,
              static_cast<unsigned long long>(rs.tree().RangeCount(q)));
  std::printf("%10s %12s %16s %14s\n", "samples", "time (ms)",
              "mean CI width", "rel L1 error");
  Stopwatch watch;
  for (uint64_t target : {64u, 256u, 1024u, 4096u, 16384u}) {
    while (kde.samples() < target) {
      if (kde.Step(std::min<uint64_t>(64, target - kde.samples())) == 0) break;
    }
    std::vector<double> map = kde.DensityMap();
    double l1 = 0;
    for (size_t i = 0; i < map.size(); ++i) l1 += std::fabs(map[i] - exact[i]);
    std::printf("%10llu %12.2f %16.5f %14.4f\n",
                static_cast<unsigned long long>(kde.samples()),
                watch.ElapsedMillis(), kde.MeanHalfWidth(),
                exact_mass > 0 ? l1 / exact_mass : 0.0);
    if (kde.Exhausted()) break;
  }
}

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_TWEETS", 200'000);
  TweetOptions options;
  options.num_tweets = n;
  TweetGenerator gen(options);
  std::vector<Tweet> tweets = gen.Generate();
  auto entries = TweetGenerator::ToEntries(tweets);
  RsTree<3> rs(entries, {}, 51);

  bench::PrintHeader(
      "Fig 5 — online KDE convergence (city zoom vs national zoom)",
      "tweets=" + std::to_string(n) +
      "  (demo: SLC -> USA zoom-out over live twitter data)");

  // "SLC": a dense city window; the generator guarantees a city near the
  // event region's center, so zoom there.
  Rect2 city(Point2(-85.4, 32.9), Point2(-83.4, 34.6));
  Rect3 city_q(Point3(city.lo()[0], city.lo()[1], options.t_min),
               Point3(city.hi()[0], city.hi()[1], options.t_max));
  RunWindow("city zoom (SLC analogue)", rs, entries, city_q, city);

  // "USA": the whole bounding box.
  Rect2 usa(Point2(options.lon_min, options.lat_min),
            Point2(options.lon_max, options.lat_max));
  Rect3 usa_q(Point3(usa.lo()[0], usa.lo()[1], options.t_min),
              Point3(usa.hi()[0], usa.hi()[1], options.t_max));
  RunWindow("national zoom (USA analogue)", rs, entries, usa_q, usa);

  std::printf(
      "\nShape check vs paper: both quality metrics improve monotonically\n"
      "with samples/time; the dense city window converges with fewer\n"
      "samples than the national window.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
