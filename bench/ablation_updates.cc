// Ablation A4 — update cost with index maintenance (§3.1: "supporting
// ad-hoc updates is easy, as long as we properly update the associated
// samples"): insert/erase throughput of the plain R-tree, the RS-tree
// (buffer invalidation is lazy, so updates cost ~an R-tree update), and the
// LS-tree (a record belongs to ~1/(1-ratio) level trees in expectation).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace storm {
namespace {

std::vector<RTree<3>::Entry> BaseEntries() {
  static const auto* entries = [] {
    OsmOptions options;
    options.num_points = bench::EnvSize("STORM_BENCH_N", 100'000);
    OsmLikeGenerator gen(options);
    return new std::vector<RTree<3>::Entry>(
        OsmLikeGenerator::ToEntries(gen.Generate(), nullptr));
  }();
  return *entries;
}

Point3 RandomPoint(Rng* rng) {
  return Point3(rng->UniformDouble(-125, -66), rng->UniformDouble(24, 49), 0.0);
}

void BM_RTreeInsert(benchmark::State& state) {
  RTree<3> tree = RTree<3>::BulkLoadHilbert(BaseEntries(), {});
  Rng rng(42);
  RecordId next = 10'000'000;
  for (auto _ : state) {
    tree.Insert(RandomPoint(&rng), next++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeInsert);

void BM_RsTreeInsert(benchmark::State& state) {
  RsTree<3> rs(BaseEntries(), {}, 42);
  Rng rng(42);
  RecordId next = 10'000'000;
  for (auto _ : state) {
    rs.Insert(RandomPoint(&rng), next++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsTreeInsert);

void BM_LsTreeInsert(benchmark::State& state) {
  LsTree<3> ls(BaseEntries(), {}, 42);
  Rng rng(42);
  RecordId next = 10'000'000;
  for (auto _ : state) {
    ls.Insert(RandomPoint(&rng), next++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsTreeInsert);

void BM_RsTreeErase(benchmark::State& state) {
  auto entries = BaseEntries();
  RsTree<3> rs(entries, {}, 42);
  size_t cursor = 0;
  for (auto _ : state) {
    if (cursor >= entries.size()) {
      state.PauseTiming();
      rs = RsTree<3>(entries, {}, 42);
      cursor = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        rs.Erase(entries[cursor].point, entries[cursor].id));
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsTreeErase);

void BM_LsTreeErase(benchmark::State& state) {
  auto entries = BaseEntries();
  LsTree<3> ls(entries, {}, 42);
  size_t cursor = 0;
  for (auto _ : state) {
    if (cursor >= entries.size()) {
      state.PauseTiming();
      ls = LsTree<3>(entries, {}, 42);
      cursor = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        ls.Erase(entries[cursor].point, entries[cursor].id));
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsTreeErase);

// Post-update sampling latency: how quickly the RS-tree recovers after a
// burst of inserts invalidated buffers along the paths.
void BM_RsTreeSampleAfterUpdateBurst(benchmark::State& state) {
  RsTree<3> rs(BaseEntries(), {}, 42);
  Rect3 q(Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0));
  Rng rng(43);
  RecordId next = 20'000'000;
  auto sampler = rs.NewSampler(Rng(44));
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 100; ++i) rs.Insert(RandomPoint(&rng), next++);
    Status st = sampler->Begin(q, SamplingMode::kWithReplacement);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      auto e = sampler->Next();
      benchmark::DoNotOptimize(e);
    }
  }
}
BENCHMARK(BM_RsTreeSampleAfterUpdateBurst);

}  // namespace
}  // namespace storm

BENCHMARK_MAIN();
