// Figure 6(b): online short-text understanding — the demo zooms into
// downtown Atlanta during the Feb 10-13 2014 snowstorm and watches the
// event vocabulary (snow, ice, outage, ...) dominate the sampled tweets.
//
// Reproduction metrics, as samples accumulate: precision@10 of the online
// top-terms list against the exact top-10 of the window, and whether the
// headline event terms have surfaced.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_TWEETS", 200'000);
  TweetOptions options;
  options.num_tweets = n;
  TweetGenerator gen(options);
  std::vector<Tweet> tweets = gen.Generate();
  auto entries = TweetGenerator::ToEntries(tweets);
  RsTree<3> rs(entries, {}, 71);

  Rect3 q(Point3(options.event_region.lo()[0], options.event_region.lo()[1],
                 options.event_t_min),
          Point3(options.event_region.hi()[0], options.event_region.hi()[1],
                 options.event_t_max));

  // Exact top terms of the window.
  TermCounter exact_counter;
  for (const auto& e : entries) {
    if (q.Contains(e.point)) {
      exact_counter.AddDocument(Tokenize(tweets[e.id].text));
    }
  }
  auto exact_top = exact_counter.TopTerms(10);

  bench::PrintHeader(
      "Fig 6(b) — online short-text understanding (Atlanta snowstorm window)",
      "tweets=" + std::to_string(n) + "  window docs=" +
          std::to_string(exact_counter.documents()));

  std::printf("exact top-10:");
  for (const auto& t : exact_top) std::printf(" %s", t.term.c_str());
  std::printf("\n\n");

  auto sampler = rs.NewSampler(Rng(73));
  OnlineTermFrequency<3> freq(sampler.get(), [&tweets](RecordId id) {
    return std::string_view(tweets[id].text);
  });
  Status st = freq.Begin(q);
  if (!st.ok()) {
    std::printf("begin failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("%10s %12s %14s   %s\n", "docs", "time (ms)", "precision@10",
              "online top-5");
  Stopwatch watch;
  for (uint64_t target : {16u, 64u, 256u, 1024u, 4096u}) {
    while (freq.documents() < target) {
      if (freq.Step(64) == 0) break;
    }
    auto top = freq.TopTerms(10);
    std::string preview;
    for (size_t i = 0; i < top.size() && i < 5; ++i) {
      preview += top[i].term + " ";
    }
    std::printf("%10llu %12.2f %14.2f   %s\n",
                static_cast<unsigned long long>(freq.documents()),
                watch.ElapsedMillis(), TopTermPrecision(top, exact_top, 10),
                preview.c_str());
    if (freq.Exhausted()) break;
  }
  std::printf(
      "\nShape check vs paper: the event vocabulary (snow/ice/outage/...)\n"
      "dominates the window after a few hundred sampled tweets and the\n"
      "top-term list stabilizes (precision@10 -> 1).\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
