// Figure 6(a): online approximate trajectory construction — rebuild one
// twitter user's path from online samples of their geotagged tweets; the
// approximation sharpens as more samples arrive.
//
// Reproduction metric: mean distance between the reconstructed polyline and
// the user's true polyline (all of their tweets), as a function of samples
// drawn from the spatio-temporal query.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_TWEETS", 200'000);
  TweetOptions options;
  options.num_tweets = n;
  options.num_users = 200;  // ~1000 tweets per user: a real trajectory
  TweetGenerator gen(options);
  std::vector<Tweet> tweets = gen.Generate();
  auto entries = TweetGenerator::ToEntries(tweets);
  RsTree<3> rs(entries, {}, 61);

  const int64_t user = 7;
  TrajectoryBuilder truth;
  for (const Tweet& t : tweets) {
    if (t.user == user) truth.Add(t.t, Point2(t.lon, t.lat));
  }

  bench::PrintHeader(
      "Fig 6(a) — online approximate trajectory construction",
      "tweets=" + std::to_string(n) + "  user=" + std::to_string(user) +
          "  true fixes=" + std::to_string(truth.size()));

  auto sampler = rs.NewSampler(Rng(63));
  OnlineTrajectory<3> traj(sampler.get(), [&tweets, user](const RTree<3>::Entry& e) {
    return tweets[e.id].user == user;
  });
  Status st = traj.Begin(Rect3::Everything());
  if (!st.ok()) {
    std::printf("begin failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("%12s %10s %18s %14s\n", "draws", "fixes", "mean error (deg)",
              "time (ms)");
  Stopwatch watch;
  for (uint64_t target_fixes : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    while (traj.Current().size() < target_fixes && !traj.Exhausted()) {
      if (traj.Step(256) == 0 && traj.Exhausted()) break;
    }
    if (traj.Current().empty()) continue;
    std::printf("%12llu %10zu %18.4f %14.2f\n",
                static_cast<unsigned long long>(traj.samples_drawn()),
                traj.Current().size(), TrajectoryError(traj.Current(), truth),
                watch.ElapsedMillis());
    if (traj.Exhausted()) break;
  }
  std::printf(
      "\nShape check vs paper: reconstruction error falls monotonically as\n"
      "more of the user's tweets are sampled; a recognizable path emerges\n"
      "from a few dozen fixes.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
