// Ablation A1 — RS-tree sample-buffer size: the paper says S(u) sizes are
// "properly calculated"; this bench sweeps the buffer size and measures the
// cost per online sample. Too small a buffer degenerates toward RandomPath
// (a descent per draw); too large wastes refill work on queries that stop
// early.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace storm {
namespace {

struct SharedData {
  std::vector<RTree<3>::Entry> entries;
  Rect3 query{Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0)};

  static const SharedData& Get() {
    static const auto* data = [] {
      auto* d = new SharedData();
      OsmOptions options;
      options.num_points = bench::EnvSize("STORM_BENCH_N", 200'000);
      OsmLikeGenerator gen(options);
      d->entries = OsmLikeGenerator::ToEntries(gen.Generate(), nullptr);
      return d;
    }();
    return *data;
  }
};

void BM_RsTreeDrawSample(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  RsTreeOptions options;
  options.buffer_size = static_cast<size_t>(state.range(0));
  RsTree<3> rs(data.entries, options, 42);
  auto sampler = rs.NewSampler(Rng(43));
  Status st = sampler->Begin(data.query, SamplingMode::kWithReplacement);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto e = sampler->Next();
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RsTreeDrawSample)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

// Cold-start comparison: cost of the FIRST 64 samples including lazy
// buffer fills (large buffers pay more up front).
void BM_RsTreeColdStart(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  RsTreeOptions options;
  options.buffer_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RsTree<3> rs(data.entries, options, 42);
    auto sampler = rs.NewSampler(Rng(43));
    state.ResumeTiming();
    Status st = sampler->Begin(data.query, SamplingMode::kWithReplacement);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    for (int i = 0; i < 64; ++i) {
      auto e = sampler->Next();
      benchmark::DoNotOptimize(e);
    }
  }
}

// Fixed low iteration count: each iteration rebuilds the index, which is
// far more expensive than the measured region.
BENCHMARK(BM_RsTreeColdStart)->Arg(8)->Arg(64)->Arg(1024)->Iterations(20);

}  // namespace
}  // namespace storm

BENCHMARK_MAIN();
