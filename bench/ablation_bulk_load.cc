// Ablation A7 — bulk-loading method: build time, packing quality (node
// count), and range-query cost of STR vs Hilbert bulk loading vs one-by-one
// Guttman inserts. The RS-tree uses Hilbert loading (§3.1) for its
// clustering/locality; this quantifies what that choice buys.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  OsmOptions gen_options;
  gen_options.num_points = n;
  OsmLikeGenerator gen(gen_options);
  auto entries = OsmLikeGenerator::ToEntries(gen.Generate(), nullptr);

  bench::PrintHeader("Ablation A7 — R-tree bulk loading method",
                     "N=" + std::to_string(n) +
                         "  query cost = mean node visits over 200 random "
                         "1-degree window queries");

  Rng rng(42);
  std::vector<Rect3> queries;
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble(gen_options.lon_min, gen_options.lon_max - 1);
    double y = rng.UniformDouble(gen_options.lat_min, gen_options.lat_max - 1);
    queries.push_back(Rect3(Point3(x, y, -1), Point3(x + 1, y + 1, 1)));
  }

  auto evaluate = [&](const char* label, auto build) {
    Stopwatch watch;
    RTree<3> tree = build();
    double build_ms = watch.ElapsedMillis();
    const uint64_t touched_before = tree.nodes_touched();
    uint64_t hits = 0;
    for (const Rect3& q : queries) {
      hits += tree.RangeCount(q);
    }
    double visits = static_cast<double>(tree.nodes_touched() - touched_before) /
                    queries.size();
    std::printf("%10s %14.1f %12llu %10d %18.1f\n", label, build_ms,
                static_cast<unsigned long long>(tree.NodeCount()),
                tree.Height(), visits);
    return hits;
  };

  std::printf("%10s %14s %12s %10s %18s\n", "method", "build (ms)", "nodes",
              "height", "visits / query");
  uint64_t a = evaluate("STR", [&] { return RTree<3>::BulkLoadStr(entries, {}); });
  uint64_t b = evaluate("Hilbert",
                        [&] { return RTree<3>::BulkLoadHilbert(entries, {}); });
  uint64_t c = evaluate("Insert", [&] {
    RTree<3> tree;
    for (const auto& e : entries) tree.Insert(e.point, e.id);
    return tree;
  });
  if (a != b || b != c) {
    std::printf("WARNING: query results differ between builds!\n");
  }
  std::printf(
      "\nExpected: bulk loading is ~10-50x faster to build and packs ~40%%\n"
      "fewer nodes than repeated inserts; STR and Hilbert trees answer\n"
      "window queries with comparable node visits, both beating the\n"
      "insert-built tree.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
