// Ablation: serving-layer overhead on the Fig 3(a) workload.
//
// The same OSM-like data set and mountain-west window as
// fig3a_query_efficiency, queried two ways with identical ExecOptions:
//
//   in-process — N threads calling Client::Execute directly, the PR-4
//                facade over Session (no serialization, no sockets);
//   storm_server — the same engine behind the frame protocol, driven by N
//                concurrent RemoteClients streaming PROGRESS over TCP
//                loopback.
//
// Both modes run the same number of queries per worker with a live
// progress callback, so the difference between the two mean latencies is
// exactly the serving layer: frame encode/decode, CRC, syscalls, the
// writer thread, and admission accounting. Reported: mean per-query
// latency per mode and the relative overhead; the acceptance bar for the
// serving layer is < 15% on this workload.
//
// A second scenario models interactive map exploration on the same table:
// N clients alternate a shared overview viewport with random half-size
// pans inside it, first with the sample-reservoir cache off, then with a
// private cache on. Reported: aggregate samples/sec and the p99
// time-to-first-CI per phase, gated by a PASS/FAIL line (acceptance:
// cache on reaches >= 2x samples/sec and a better p99) so CI can grep it.
//
// STORM_BENCH_SCENARIO selects what runs: "serving", "overlap", or "all"
// (the default). The cache CI job runs the overlap scenario alone under
// ThreadSanitizer.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace storm {
namespace {

struct ModeStats {
  double total_ms = 0.0;
  uint64_t queries = 0;
  uint64_t progress_frames = 0;
  uint64_t errors = 0;
  // Slowest remote query's joined client+server profile: printed when the
  // run goes red so triage starts from a trace id, not a bare error count.
  double slowest_ms = 0.0;
  std::shared_ptr<const QueryProfile> slowest_profile;
};

void RunServingScenario(Client& client, uint64_t n, int clients,
                        int per_client, uint64_t cap) {
  const std::string query =
      "SELECT AVG(altitude) FROM osm REGION(-112, 28, -88, 46) SAMPLES " +
      std::to_string(cap) + " ERROR 0.0001% USING RSTREE";

  bench::PrintHeader(
      "Ablation — serving layer: remote streaming vs in-process Client",
      "N=" + std::to_string(n) + "  cap=" + std::to_string(cap) + "  " +
          std::to_string(clients) + " concurrent clients x " +
          std::to_string(per_client) + " queries, Fig 3(a) window");

  // Warm the planner, sampler, and column caches once.
  (void)client.Execute(query);

  // --- In-process: N threads against the Client facade. ---
  std::vector<ModeStats> local(static_cast<size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ModeStats& s = local[static_cast<size_t>(c)];
        for (int i = 0; i < per_client; ++i) {
          Stopwatch watch;
          auto result = client.Execute(
              query, ExecOptions().WithProgress([&s](const QueryProgress&) {
                ++s.progress_frames;
                return true;
              }));
          if (!result.ok()) {
            ++s.errors;
            continue;
          }
          s.total_ms += watch.ElapsedMillis();
          ++s.queries;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // --- Remote: the same engine behind storm_server, N RemoteClients. ---
  ServerOptions server_options;
  server_options.port = 0;
  server_options.query_threads = clients;
  StormServer server(&client.session(), server_options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
    return;
  }
  std::vector<ModeStats> remote(static_cast<size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ModeStats& s = remote[static_cast<size_t>(c)];
        RemoteClient rc;
        Status cs = rc.Connect("127.0.0.1", server.port());
        if (!cs.ok()) {
          s.errors += static_cast<uint64_t>(per_client);
          return;
        }
        // A live-dashboard cadence: each query streams a handful of
        // PROGRESS frames. (The paper's UI redraws at ~1 s; 50 ms is
        // already 20x denser.) Every frame costs the consumer a wakeup,
        // which is what a saturated 1-core host actually measures.
        rc.set_progress_interval_ms(50);
        // Production posture: 1% of queries sampled into the TraceSinks.
        // The <3% overhead acceptance bar for tracing is measured here.
        rc.set_trace_sample_rate(0.01);
        for (int i = 0; i < per_client; ++i) {
          Stopwatch watch;
          auto result = rc.Execute(
              query, ExecOptions().WithProgress([&s](const QueryProgress&) {
                ++s.progress_frames;
                return true;
              }));
          if (!result.ok()) {
            ++s.errors;
            continue;
          }
          s.total_ms += watch.ElapsedMillis();
          ++s.queries;
          if (result->profile != nullptr &&
              result->profile->total_ms() > s.slowest_ms) {
            s.slowest_ms = result->profile->total_ms();
            s.slowest_profile = result->profile;
          }
        }
        rc.Close();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  server.Stop();

  ModeStats local_total, remote_total;
  for (const ModeStats& s : local) {
    local_total.total_ms += s.total_ms;
    local_total.queries += s.queries;
    local_total.progress_frames += s.progress_frames;
    local_total.errors += s.errors;
  }
  for (const ModeStats& s : remote) {
    remote_total.total_ms += s.total_ms;
    remote_total.queries += s.queries;
    remote_total.progress_frames += s.progress_frames;
    remote_total.errors += s.errors;
    if (s.slowest_ms > remote_total.slowest_ms) {
      remote_total.slowest_ms = s.slowest_ms;
      remote_total.slowest_profile = s.slowest_profile;
    }
  }
  if (local_total.queries == 0 || remote_total.queries == 0 ||
      local_total.errors > 0 || remote_total.errors > 0) {
    std::fprintf(stderr, "errors during run (local errors=%llu, remote "
                 "errors=%llu, local queries=%llu, remote queries=%llu)\n",
                 static_cast<unsigned long long>(local_total.errors),
                 static_cast<unsigned long long>(remote_total.errors),
                 static_cast<unsigned long long>(local_total.queries),
                 static_cast<unsigned long long>(remote_total.queries));
    if (remote_total.slowest_profile != nullptr) {
      std::fprintf(stderr,
                   "slowest remote query: %.1f ms, trace %s; joined "
                   "profile:\n%s",
                   remote_total.slowest_ms,
                   remote_total.slowest_profile->trace.trace_id_hex().c_str(),
                   remote_total.slowest_profile->ToString().c_str());
    }
    if (local_total.queries == 0 || remote_total.queries == 0) return;
  }

  const double local_mean =
      local_total.total_ms / static_cast<double>(local_total.queries);
  const double remote_mean =
      remote_total.total_ms / static_cast<double>(remote_total.queries);
  const double overhead = (remote_mean - local_mean) / local_mean * 100.0;

  std::printf("%12s | %8s %12s %12s %8s\n", "mode", "queries", "mean ms",
              "progress", "errors");
  std::printf("%12s | %8llu %12.2f %12llu %8llu\n", "in-process",
              static_cast<unsigned long long>(local_total.queries), local_mean,
              static_cast<unsigned long long>(local_total.progress_frames),
              static_cast<unsigned long long>(local_total.errors));
  std::printf("%12s | %8llu %12.2f %12llu %8llu\n", "storm_server",
              static_cast<unsigned long long>(remote_total.queries),
              remote_mean,
              static_cast<unsigned long long>(remote_total.progress_frames),
              static_cast<unsigned long long>(remote_total.errors));
  std::printf("\nserving-layer overhead: %+.1f%% per query (target < 15%%)\n",
              overhead);
}

// --- Overlapping-pan scenario: the shared sample-reservoir cache. ---

struct PanPhase {
  uint64_t samples = 0;
  uint64_t cached = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
  std::vector<double> first_ci_ms;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(rank + 0.5)];
}

// One phase of the map-exploration workload: every client alternates the
// shared overview viewport (each 6th query — the "zoom out" that
// replenishes the reservoir) with random half-size pans inside it. With
// cache == nullptr the phase runs with caching disabled; otherwise every
// query publishes into and probes the given private cache.
void RunOverlapPhase(Client& client, SampleReservoirCache* cache, int clients,
                     int per_client, uint64_t overview_cap, uint64_t pan_cap,
                     PanPhase* out) {
  SamplingOptions sampling;
  if (cache != nullptr) {
    sampling.WithCache(cache);
  } else {
    sampling.WithSampleCache(false);
  }
  std::vector<PanPhase> per(static_cast<size_t>(clients));
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PanPhase& s = per[static_cast<size_t>(c)];
      Rng rng(0x9a70 + static_cast<uint64_t>(c));
      char buf[256];
      for (int i = 0; i < per_client; ++i) {
        const bool overview = i % 6 == 0;
        if (overview) {
          std::snprintf(buf, sizeof(buf),
                        "SELECT AVG(altitude) FROM osm "
                        "REGION(-112, 28, -88, 46) SAMPLES %llu USING RSTREE",
                        static_cast<unsigned long long>(overview_cap));
        } else {
          const double x0 = rng.UniformDouble(-112.0, -100.0);
          const double y0 = rng.UniformDouble(28.0, 37.0);
          std::snprintf(buf, sizeof(buf),
                        "SELECT AVG(altitude) FROM osm "
                        "REGION(%.3f, %.3f, %.3f, %.3f) SAMPLES %llu "
                        "USING RSTREE",
                        x0, y0, x0 + 12.0, y0 + 9.0,
                        static_cast<unsigned long long>(pan_cap));
        }
        Stopwatch watch;
        bool got_first = false;
        auto result = client.Execute(
            buf, ExecOptions()
                     .WithSampling(sampling)
                     .WithProfile(false)
                     .WithProgress([&](const QueryProgress& p) {
                       // Time-to-first-CI is tracked for the pans only:
                       // that is the latency an interactive user feels,
                       // and the overview's live draw cost is identical
                       // in both phases.
                       if (!overview && !got_first && p.samples > 0 &&
                           std::isfinite(p.ci.half_width)) {
                         got_first = true;
                         s.first_ci_ms.push_back(watch.ElapsedMillis());
                       }
                       return true;
                     }));
        if (!result.ok()) {
          ++s.errors;
          continue;
        }
        s.samples += result->samples;
        s.cached += result->cache_samples;
        ++s.queries;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out->wall_ms = wall.ElapsedMillis();
  for (PanPhase& s : per) {
    out->samples += s.samples;
    out->cached += s.cached;
    out->queries += s.queries;
    out->errors += s.errors;
    out->first_ci_ms.insert(out->first_ci_ms.end(), s.first_ci_ms.begin(),
                            s.first_ci_ms.end());
  }
}

void RunOverlapScenario(Client& client, int clients) {
  using bench::EnvSize;
  const int per_client = static_cast<int>(EnvSize("STORM_BENCH_PANS", 18));
  const uint64_t overview_cap =
      EnvSize("STORM_BENCH_OVERVIEW_SAMPLES", 60'000);
  const uint64_t pan_cap = EnvSize("STORM_BENCH_PAN_SAMPLES", 15'000);

  bench::PrintHeader(
      "Ablation — shared sample-reservoir cache: overlapping map pans",
      std::to_string(clients) + " clients x " + std::to_string(per_client) +
          " viewports over the Fig 3(a) window; overview cap=" +
          std::to_string(overview_cap) + ", pan cap=" +
          std::to_string(pan_cap) + "; cache off, then on");

  // Warm the planner, sampler, and column caches once.
  (void)client.Execute(
      "SELECT AVG(altitude) FROM osm REGION(-112, 28, -88, 46) "
      "SAMPLES 10000 USING RSTREE");

  PanPhase off, on;
  RunOverlapPhase(client, nullptr, clients, per_client, overview_cap, pan_cap,
                  &off);
  SampleReservoirCache cache;
  RunOverlapPhase(client, &cache, clients, per_client, overview_cap, pan_cap,
                  &on);

  if (off.queries == 0 || on.queries == 0 || off.errors > 0 ||
      on.errors > 0) {
    std::fprintf(stderr,
                 "errors during overlap run (off errors=%llu queries=%llu, "
                 "on errors=%llu queries=%llu)\n",
                 static_cast<unsigned long long>(off.errors),
                 static_cast<unsigned long long>(off.queries),
                 static_cast<unsigned long long>(on.errors),
                 static_cast<unsigned long long>(on.queries));
    if (off.queries == 0 || on.queries == 0) return;
  }

  const double off_sps =
      static_cast<double>(off.samples) / (off.wall_ms / 1000.0);
  const double on_sps = static_cast<double>(on.samples) / (on.wall_ms / 1000.0);
  const double off_p99 = Percentile(off.first_ci_ms, 0.99);
  const double on_p99 = Percentile(on.first_ci_ms, 0.99);

  std::printf("%10s | %8s %12s %14s %18s %8s\n", "cache", "queries", "samples",
              "samples/sec", "p99 pan 1st-CI ms", "errors");
  std::printf("%10s | %8llu %12llu %14.0f %18.2f %8llu\n", "off",
              static_cast<unsigned long long>(off.queries),
              static_cast<unsigned long long>(off.samples), off_sps, off_p99,
              static_cast<unsigned long long>(off.errors));
  std::printf("%10s | %8llu %12llu %14.0f %18.2f %8llu\n", "on",
              static_cast<unsigned long long>(on.queries),
              static_cast<unsigned long long>(on.samples), on_sps, on_p99,
              static_cast<unsigned long long>(on.errors));
  std::printf("\ncache counters: served=%llu hits=%llu misses=%llu "
              "published=%llu evictions=%llu reservoirs=%llu bytes=%llu\n",
              static_cast<unsigned long long>(on.cached),
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()),
              static_cast<unsigned long long>(cache.published()),
              static_cast<unsigned long long>(cache.evictions()),
              static_cast<unsigned long long>(cache.reservoirs()),
              static_cast<unsigned long long>(cache.bytes()));

  const double speedup = off_sps > 0.0 ? on_sps / off_sps : 0.0;
  const bool pass = speedup >= 2.0 && on_p99 < off_p99;
  std::printf("\n%s: cache on reaches %.1fx aggregate samples/sec and p99 "
              "time-to-first-CI %.2f ms -> %.2f ms (acceptance: >= 2.0x "
              "and improved p99)\n",
              pass ? "PASS" : "FAIL", speedup, off_p99, on_p99);
}

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  const int clients = static_cast<int>(EnvSize("STORM_BENCH_CLIENTS", 8));
  const int per_client = static_cast<int>(EnvSize("STORM_BENCH_QUERIES", 5));
  const uint64_t cap = EnvSize("STORM_BENCH_SAMPLES", 200'000);
  const char* scenario_env = std::getenv("STORM_BENCH_SCENARIO");
  const std::string scenario = scenario_env != nullptr ? scenario_env : "all";

  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }

  Client client;
  Status st = client.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return;
  }

  if (scenario == "all" || scenario == "serving") {
    RunServingScenario(client, n, clients, per_client, cap);
  }
  if (scenario == "all" || scenario == "overlap") {
    RunOverlapScenario(client, clients);
  }
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
