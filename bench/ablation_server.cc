// Ablation: serving-layer overhead on the Fig 3(a) workload.
//
// The same OSM-like data set and mountain-west window as
// fig3a_query_efficiency, queried two ways with identical ExecOptions:
//
//   in-process — N threads calling Client::Execute directly, the PR-4
//                facade over Session (no serialization, no sockets);
//   storm_server — the same engine behind the frame protocol, driven by N
//                concurrent RemoteClients streaming PROGRESS over TCP
//                loopback.
//
// Both modes run the same number of queries per worker with a live
// progress callback, so the difference between the two mean latencies is
// exactly the serving layer: frame encode/decode, CRC, syscalls, the
// writer thread, and admission accounting. Reported: mean per-query
// latency per mode and the relative overhead; the acceptance bar for the
// serving layer is < 15% on this workload.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace storm {
namespace {

struct ModeStats {
  double total_ms = 0.0;
  uint64_t queries = 0;
  uint64_t progress_frames = 0;
  uint64_t errors = 0;
  // Slowest remote query's joined client+server profile: printed when the
  // run goes red so triage starts from a trace id, not a bare error count.
  double slowest_ms = 0.0;
  std::shared_ptr<const QueryProfile> slowest_profile;
};

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  const int clients = static_cast<int>(EnvSize("STORM_BENCH_CLIENTS", 8));
  const int per_client = static_cast<int>(EnvSize("STORM_BENCH_QUERIES", 5));
  const uint64_t cap = EnvSize("STORM_BENCH_SAMPLES", 200'000);

  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<Value> docs;
  for (const OsmPoint& p : gen.Generate()) {
    docs.push_back(OsmLikeGenerator::ToDocument(p));
  }

  Client client;
  Status st = client.CreateTable("osm", docs);
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return;
  }

  const std::string query =
      "SELECT AVG(altitude) FROM osm REGION(-112, 28, -88, 46) SAMPLES " +
      std::to_string(cap) + " ERROR 0.0001% USING RSTREE";

  bench::PrintHeader(
      "Ablation — serving layer: remote streaming vs in-process Client",
      "N=" + std::to_string(n) + "  cap=" + std::to_string(cap) + "  " +
          std::to_string(clients) + " concurrent clients x " +
          std::to_string(per_client) + " queries, Fig 3(a) window");

  // Warm the planner, sampler, and column caches once.
  (void)client.Execute(query);

  // --- In-process: N threads against the Client facade. ---
  std::vector<ModeStats> local(static_cast<size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ModeStats& s = local[static_cast<size_t>(c)];
        for (int i = 0; i < per_client; ++i) {
          Stopwatch watch;
          auto result = client.Execute(
              query, ExecOptions().WithProgress([&s](const QueryProgress&) {
                ++s.progress_frames;
                return true;
              }));
          if (!result.ok()) {
            ++s.errors;
            continue;
          }
          s.total_ms += watch.ElapsedMillis();
          ++s.queries;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // --- Remote: the same engine behind storm_server, N RemoteClients. ---
  ServerOptions server_options;
  server_options.port = 0;
  server_options.query_threads = clients;
  StormServer server(&client.session(), server_options);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
    return;
  }
  std::vector<ModeStats> remote(static_cast<size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ModeStats& s = remote[static_cast<size_t>(c)];
        RemoteClient rc;
        Status cs = rc.Connect("127.0.0.1", server.port());
        if (!cs.ok()) {
          s.errors += static_cast<uint64_t>(per_client);
          return;
        }
        // A live-dashboard cadence: each query streams a handful of
        // PROGRESS frames. (The paper's UI redraws at ~1 s; 50 ms is
        // already 20x denser.) Every frame costs the consumer a wakeup,
        // which is what a saturated 1-core host actually measures.
        rc.set_progress_interval_ms(50);
        // Production posture: 1% of queries sampled into the TraceSinks.
        // The <3% overhead acceptance bar for tracing is measured here.
        rc.set_trace_sample_rate(0.01);
        for (int i = 0; i < per_client; ++i) {
          Stopwatch watch;
          auto result = rc.Execute(
              query, ExecOptions().WithProgress([&s](const QueryProgress&) {
                ++s.progress_frames;
                return true;
              }));
          if (!result.ok()) {
            ++s.errors;
            continue;
          }
          s.total_ms += watch.ElapsedMillis();
          ++s.queries;
          if (result->profile != nullptr &&
              result->profile->total_ms() > s.slowest_ms) {
            s.slowest_ms = result->profile->total_ms();
            s.slowest_profile = result->profile;
          }
        }
        rc.Close();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  server.Stop();

  ModeStats local_total, remote_total;
  for (const ModeStats& s : local) {
    local_total.total_ms += s.total_ms;
    local_total.queries += s.queries;
    local_total.progress_frames += s.progress_frames;
    local_total.errors += s.errors;
  }
  for (const ModeStats& s : remote) {
    remote_total.total_ms += s.total_ms;
    remote_total.queries += s.queries;
    remote_total.progress_frames += s.progress_frames;
    remote_total.errors += s.errors;
    if (s.slowest_ms > remote_total.slowest_ms) {
      remote_total.slowest_ms = s.slowest_ms;
      remote_total.slowest_profile = s.slowest_profile;
    }
  }
  if (local_total.queries == 0 || remote_total.queries == 0 ||
      local_total.errors > 0 || remote_total.errors > 0) {
    std::fprintf(stderr, "errors during run (local errors=%llu, remote "
                 "errors=%llu, local queries=%llu, remote queries=%llu)\n",
                 static_cast<unsigned long long>(local_total.errors),
                 static_cast<unsigned long long>(remote_total.errors),
                 static_cast<unsigned long long>(local_total.queries),
                 static_cast<unsigned long long>(remote_total.queries));
    if (remote_total.slowest_profile != nullptr) {
      std::fprintf(stderr,
                   "slowest remote query: %.1f ms, trace %s; joined "
                   "profile:\n%s",
                   remote_total.slowest_ms,
                   remote_total.slowest_profile->trace.trace_id_hex().c_str(),
                   remote_total.slowest_profile->ToString().c_str());
    }
    if (local_total.queries == 0 || remote_total.queries == 0) return;
  }

  const double local_mean =
      local_total.total_ms / static_cast<double>(local_total.queries);
  const double remote_mean =
      remote_total.total_ms / static_cast<double>(remote_total.queries);
  const double overhead = (remote_mean - local_mean) / local_mean * 100.0;

  std::printf("%12s | %8s %12s %12s %8s\n", "mode", "queries", "mean ms",
              "progress", "errors");
  std::printf("%12s | %8llu %12.2f %12llu %8llu\n", "in-process",
              static_cast<unsigned long long>(local_total.queries), local_mean,
              static_cast<unsigned long long>(local_total.progress_frames),
              static_cast<unsigned long long>(local_total.errors));
  std::printf("%12s | %8llu %12.2f %12llu %8llu\n", "storm_server",
              static_cast<unsigned long long>(remote_total.queries),
              remote_mean,
              static_cast<unsigned long long>(remote_total.progress_frames),
              static_cast<unsigned long long>(remote_total.errors));
  std::printf("\nserving-layer overhead: %+.1f%% per query (target < 15%%)\n",
              overhead);
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
