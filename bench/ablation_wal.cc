// Ablation A7 — the price of durability: insert throughput with the WAL
// off (plain in-memory table), on with per-insert commits (one log record
// + one sync per document), and on with group commit (InsertBatch logs a
// whole batch as ONE record with ONE sync). The claim under test: group
// commit amortizes the logging overhead to well under ~15% over the
// non-durable baseline, while per-insert commits pay full price.
//
//   STORM_BENCH_WAL_N      documents inserted per configuration (default 20k)
//   STORM_BENCH_WAL_BATCH  group-commit batch size (default 64)

#include <algorithm>

#include "bench_util.h"

namespace storm {
namespace {

struct WalRow {
  const char* config;
  double elapsed_ms;
  double docs_per_sec;
  double overhead_pct;  // vs the non-durable baseline
  uint64_t wal_appends;
  uint64_t wal_syncs;
};

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_WAL_N", 20'000);
  const uint64_t batch = EnvSize("STORM_BENCH_WAL_BATCH", 64);

  // Pre-generate all documents so generation cost stays out of the timing.
  Rng rng(4242);
  std::vector<Value> docs;
  docs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value doc = Value::MakeObject();
    doc.Set("x", Value::Double(rng.UniformDouble(-125, -66)));
    doc.Set("y", Value::Double(rng.UniformDouble(24, 49)));
    doc.Set("t", Value::Double(rng.UniformDouble(0, 1000)));
    doc.Set("load", Value::Double(rng.UniformDouble(0, 100)));
    docs.push_back(std::move(doc));
  }
  std::vector<Value> seed_docs(docs.begin(), docs.begin() + 16);

  ImportOptions import;
  import.binding.x_field = "x";
  import.binding.y_field = "y";
  import.binding.t_field = "t";

  bench::PrintHeader(
      "Ablation A7 — WAL on/off insert throughput (group commit)",
      "N=" + std::to_string(n) + "  batch=" + std::to_string(batch) +
          "  (overhead is relative to the non-durable table)");

  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* appends = reg.GetCounter("storm_wal_appends_total");
  Counter* syncs = reg.GetCounter("storm_wal_syncs_total");

  std::vector<WalRow> rows;
  // Per-insert and batched runs are compared against the non-durable run
  // with the same batching, so "overhead" isolates the WAL cost.
  double baseline_single_ms = 0.0;
  double baseline_batched_ms = 0.0;

  auto measure = [&](const char* name, bool durable, uint64_t batch_size) {
    TableConfig config;
    config.durable = durable;
    auto created = Table::Create("bench", seed_docs, import, config);
    if (!created.ok()) {
      std::printf("%s: create failed: %s\n", name,
                  created.status().ToString().c_str());
      return;
    }
    Table table = std::move(*created);
    uint64_t appends0 = appends->Value();
    uint64_t syncs0 = syncs->Value();
    Stopwatch watch;
    if (batch_size <= 1) {
      for (uint64_t i = 16; i < n; ++i) {
        auto id = table.Insert(docs[i]);
        if (!id.ok()) {
          std::printf("%s: insert failed: %s\n", name,
                      id.status().ToString().c_str());
          return;
        }
      }
    } else {
      for (uint64_t i = 16; i < n; i += batch_size) {
        uint64_t end = std::min(n, i + batch_size);
        std::vector<Value> chunk(docs.begin() + i, docs.begin() + end);
        BatchInsertResult r = table.InsertBatch(chunk);
        if (!r.status.ok()) {
          std::printf("%s: batch failed: %s\n", name,
                      r.status.ToString().c_str());
          return;
        }
      }
    }
    double elapsed = watch.ElapsedMillis();
    uint64_t inserted = n - 16;
    double& baseline = batch_size <= 1 ? baseline_single_ms : baseline_batched_ms;
    if (baseline == 0.0) baseline = elapsed;
    rows.push_back({name, elapsed, inserted / (elapsed / 1000.0),
                    (elapsed - baseline) / baseline * 100.0,
                    appends->Value() - appends0, syncs->Value() - syncs0});
  };

  measure("WAL off (baseline)", /*durable=*/false, /*batch_size=*/1);
  measure("WAL off, batched", /*durable=*/false, batch);
  measure("WAL on, per-insert commit", /*durable=*/true, /*batch_size=*/1);
  measure("WAL on, group commit", /*durable=*/true, batch);

  std::printf("%-28s %10s %12s %10s %10s %8s\n", "configuration", "ms",
              "docs/s", "overhead", "appends", "syncs");
  for (const WalRow& row : rows) {
    std::printf("%-28s %10.1f %12.0f %9.1f%% %10llu %8llu\n", row.config,
                row.elapsed_ms, row.docs_per_sec, row.overhead_pct,
                static_cast<unsigned long long>(row.wal_appends),
                static_cast<unsigned long long>(row.wal_syncs));
  }
  std::printf(
      "\nShape check: per-insert commit pays one WAL record + one sync per\n"
      "document; group commit logs a batch of %llu as one record with one\n"
      "sync, keeping the durability overhead under ~15%% of the baseline.\n\n",
      static_cast<unsigned long long>(batch));
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
