// Ablation A2 — LS-tree level ratio: the paper samples each level with
// probability 1/2. Smaller ratios mean fewer levels and less space but
// coarser control over how many extra matches each level scan reports;
// larger ratios approach duplicating the data. This bench sweeps the ratio
// and reports space overhead, number of levels, and the time to draw k
// online samples.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 200'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  auto entries = OsmLikeGenerator::ToEntries(gen.Generate(), nullptr);
  Rect3 q(Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0));

  bench::PrintHeader("Ablation A2 — LS-tree level sampling ratio",
                     "N=" + std::to_string(n) + "  k=1024 online samples");
  std::printf("%8s %8s %14s %16s %14s\n", "ratio", "levels", "total entries",
              "space overhead", "k-sample ms");
  for (double ratio : {0.125, 0.25, 0.5, 0.75}) {
    LsTreeOptions ls_options;
    ls_options.level_ratio = ratio;
    Stopwatch build;
    LsTree<3> ls(entries, ls_options, 42);
    double build_ms = build.ElapsedMillis();
    (void)build_ms;
    auto sampler = ls.NewSampler(Rng(43));
    double ms = bench::TimeKSamples(*sampler, q, 1024,
                                    SamplingMode::kWithoutReplacement);
    std::printf("%8.3f %8d %14llu %15.2fx %14.3f\n", ratio, ls.num_levels(),
                static_cast<unsigned long long>(ls.TotalEntries()),
                static_cast<double>(ls.TotalEntries()) / static_cast<double>(n),
                ms);
  }
  std::printf(
      "\nExpected: space overhead ~ 1/(1-ratio); the paper's 1/2 is the\n"
      "sweet spot between space (2x) and per-level over-reporting.\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
