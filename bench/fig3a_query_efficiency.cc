// Figure 3(a): query efficiency — time to produce k spatial online samples
// as k/q grows from ~0% to 10%, for RandomPath, RS-tree, RangeReport
// (QueryFirst) and LS-tree.
//
// The paper ran this on the full OSM data set with a query of q = 10⁹; here
// the OSM-like generator is scaled to laptop size (STORM_BENCH_N points, a
// fixed query with q ≈ N/2) and the same k/q sweep is reported. Expected
// shape (paper): RandomPath degrades linearly in k and is the worst at
// large k; RangeReport pays its full cost up front and is flat; LS-tree and
// RS-tree are orders of magnitude faster for small k/q.

#include "bench_util.h"

namespace storm {
namespace {

void Run() {
  using bench::EnvSize;
  const uint64_t n = EnvSize("STORM_BENCH_N", 500'000);
  OsmOptions options;
  options.num_points = n;
  OsmLikeGenerator gen(options);
  std::vector<OsmPoint> points = gen.Generate();
  std::vector<double> altitude;
  auto entries = OsmLikeGenerator::ToEntries(points, &altitude);

  // A fixed window chosen to cover roughly half the data.
  Rect3 q(Point3(-112.0, 28.0, -1.0), Point3(-88.0, 46.0, 1.0));

  RsTreeOptions rs_options;
  RsTree<3> rs(entries, rs_options, 42);
  LsTreeOptions ls_options;
  LsTree<3> ls(entries, ls_options, 43);
  const RTree<3>& tree = rs.tree();
  uint64_t q_count = tree.RangeCount(q);

  bench::PrintHeader(
      "Fig 3(a) — query efficiency: time (ms) to draw k online samples",
      "N=" + std::to_string(n) + "  q=" + std::to_string(q_count) +
          "  (paper: full OSM, q=1e9; same k/q sweep, laptop scale)");

  // RangeReport = the exact baseline: full reporting once, independent of k.
  QueryFirstSampler<3> range_report(&tree, Rng(7));
  Stopwatch watch;
  (void)range_report.Begin(q, SamplingMode::kWithReplacement);
  double range_report_ms = watch.ElapsedMillis();

  std::printf("%8s %10s | %12s %12s %12s %12s\n", "k/q", "k", "RandomPath",
              "RS-tree", "RangeReport", "LS-tree");
  const double fractions[] = {0.0001, 0.001, 0.005, 0.01,
                              0.02,   0.04,  0.06,  0.08, 0.10};
  for (double f : fractions) {
    uint64_t k = std::max<uint64_t>(1, static_cast<uint64_t>(f * q_count));
    RandomPathSampler<3> random_path(&tree, Rng(11));
    double rp = bench::TimeKSamples(random_path, q, k,
                                    SamplingMode::kWithReplacement);
    auto rs_sampler = rs.NewSampler(Rng(13));
    double rst =
        bench::TimeKSamples(*rs_sampler, q, k, SamplingMode::kWithReplacement);
    auto ls_sampler = ls.NewSampler(Rng(17));
    double lst = bench::TimeKSamples(*ls_sampler, q, k,
                                     SamplingMode::kWithoutReplacement);
    std::printf("%7.2f%% %10llu | %12.3f %12.3f %12.3f %12.3f\n", f * 100,
                static_cast<unsigned long long>(k), rp, rst, range_report_ms,
                lst);
  }
  std::printf(
      "\nShape check vs paper: LS/RS ≪ RangeReport at small k/q; RandomPath\n"
      "grows ~linearly with k; RangeReport flat (pays q up front).\n\n");
}

}  // namespace
}  // namespace storm

int main() {
  storm::Run();
  return 0;
}
